// PTAS comparison: the accuracy/cost trade-off of the splittable
// approximation scheme. As ε shrinks, the configuration N-fold grows
// (the paper's n^{O(1/ε⁴ log 1/ε)} dependence) while the makespan
// approaches the optimum; the constant-factor algorithm is the fast
// baseline the schemes improve upon.
package main

import (
	"fmt"
	"log"
	"time"

	"ccsched"
)

func main() {
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: 16, Classes: 4, Machines: 3, Slots: 2, PMax: 60, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	lb, err := ccsched.LowerBound(in, ccsched.Splittable)
	if err != nil {
		log.Fatal(err)
	}
	lf, _ := lb.Float64()
	opt, err := ccsched.ExactSplittable(in)
	optKnown := err == nil
	fmt.Printf("splittable instance: n=%d C=%d m=%d c=%d, lower bound %.2f", in.N(), in.NumClasses(), in.M, in.Slots, lf)
	if optKnown {
		of, _ := opt.Float64()
		fmt.Printf(", optimum %.2f", of)
	}
	fmt.Println()
	fmt.Println()
	fmt.Printf("%-14s %10s %10s %12s %10s\n", "algorithm", "makespan", "ratio", "nfold vars", "time")

	start := time.Now()
	a, err := ccsched.ApproxSplittable(in)
	if err != nil {
		log.Fatal(err)
	}
	af, _ := a.Makespan().Float64()
	fmt.Printf("%-14s %10.2f %10.3f %12s %10s\n",
		"2-approx", af, af/lf, "-", time.Since(start).Round(time.Microsecond))

	for _, eps := range []float64{1.0, 0.5} {
		start := time.Now()
		res, err := ccsched.PTASSplittable(in, ccsched.PTASOptions{Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Compact.Validate(in); err != nil {
			log.Fatal(err)
		}
		mf, _ := res.Makespan().Float64()
		fmt.Printf("%-14s %10.2f %10.3f %12d %10s\n",
			fmt.Sprintf("PTAS ε=%.2f", eps), mf, mf/lf,
			res.Report.NFold.Vars, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("The N-fold variable count is the paper's running-time currency: it")
	fmt.Println("grows combinatorially with 1/ε. At implementable ε the scheme's")
	fmt.Println("(1+O(δ)) constants exceed the 2-approximation, so the best-of floor")
	fmt.Println("returns the 2-approximation schedule — the asymptotic regime where")
	fmt.Println("the PTAS wins is exactly what the paper's running-time bounds price in.")
}
