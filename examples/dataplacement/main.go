// Data placement: the paper's motivating scenario. Operations (jobs) need
// access to a database (class); databases must be stored locally, but each
// server (machine) has disk space for only c databases. Popularity is
// Zipf-skewed — a few hot databases attract most operations — which is the
// "zipf" workload family.
//
// The example compares the splittable 2-approximation (operations can be
// sharded across replicas) with the preemptive one (an operation can
// migrate but not run twice in parallel) over a server-count sweep.
package main

import (
	"fmt"
	"log"

	"ccsched"
)

func main() {
	fmt.Println("data placement: 400 operations over 24 databases, 3 DB slots per server")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s  %12s  %8s\n", "servers", "lower bound", "splittable", "preemptive", "ratio")
	for _, m := range []int64{4, 8, 16, 32} {
		in, err := ccsched.Generate("zipf", ccsched.GeneratorConfig{
			N: 400, Classes: 24, Machines: m, Slots: 3, PMax: 1000, Seed: 2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		lb, err := ccsched.LowerBound(in, ccsched.Splittable)
		if err != nil {
			log.Fatal(err)
		}
		s, err := ccsched.ApproxSplittable(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Compact.Validate(in); err != nil {
			log.Fatal(err)
		}
		p, err := ccsched.ApproxPreemptive(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Schedule.Validate(in); err != nil {
			log.Fatal(err)
		}
		sf, _ := s.Makespan().Float64()
		lf, _ := lb.Float64()
		pf, _ := p.Makespan().Float64()
		fmt.Printf("%8d  %12.1f  %12.1f  %12.1f  %8.3f\n", m, lf, sf, pf, sf/lf)
	}
	fmt.Println()
	fmt.Println("Doubling the servers halves the makespan until the hot databases'")
	fmt.Println("class-slot bound takes over — the crossover the paper's class")
	fmt.Println("constraints introduce versus plain makespan scheduling.")
}
