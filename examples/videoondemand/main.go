// Video on demand: the class-constrained packing application of Xavier and
// Miyazawa. Movies (classes) are striped onto disks (machines); each disk
// can hold at most c movies, and each viewing request (job) must be served
// from a disk storing its movie. Minimizing the peak disk load is the
// non-preemptive CCS problem.
//
// The example contrasts the 7/3-approximation with the exact optimum on a
// small catalog and with the certified lower bound on a large one.
package main

import (
	"fmt"
	"log"

	"ccsched"
)

func main() {
	fmt.Println("video on demand: requests must be served from disks storing the movie")
	fmt.Println()

	// Small catalog: exact optimum is computable.
	small := &ccsched.Instance{
		// Requests per movie: blockbuster (class 0) dominates.
		P:     []int64{9, 8, 7, 4, 3, 3, 2, 2},
		Class: []int{0, 0, 0, 1, 1, 2, 2, 3},
		M:     3,
		Slots: 2,
	}
	res, err := ccsched.ApproxNonPreemptive(small)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Schedule.Validate(small); err != nil {
		log.Fatal(err)
	}
	_, opt, err := ccsched.ExactNonPreemptive(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small catalog (n=%d, movies=%d, disks=%d, slots=%d):\n",
		small.N(), small.NumClasses(), small.M, small.Slots)
	fmt.Printf("  7/3-approximation: peak load %d\n", res.Makespan(small))
	fmt.Printf("  exact optimum:     peak load %d\n", opt)
	fmt.Printf("  true ratio:        %.3f (guarantee 7/3 ≈ 2.333)\n\n",
		float64(res.Makespan(small))/float64(opt))

	// Large catalog: compare against the certified lower bound.
	large, err := ccsched.Generate("fewlarge", ccsched.GeneratorConfig{
		N: 1000, Classes: 50, Machines: 20, Slots: 4, PMax: 500, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	lres, err := ccsched.ApproxNonPreemptive(large)
	if err != nil {
		log.Fatal(err)
	}
	if err := lres.Schedule.Validate(large); err != nil {
		log.Fatal(err)
	}
	lb, err := ccsched.LowerBound(large, ccsched.NonPreemptive)
	if err != nil {
		log.Fatal(err)
	}
	lf, _ := lb.Float64()
	fmt.Printf("large catalog (n=%d, movies=%d, disks=%d, slots=%d):\n",
		large.N(), large.NumClasses(), large.M, large.Slots)
	fmt.Printf("  7/3-approximation: peak load %d\n", lres.Makespan(large))
	fmt.Printf("  lower bound:       %.1f\n", lf)
	fmt.Printf("  ratio vs LB:       %.3f\n", float64(lres.Makespan(large))/lf)
}
