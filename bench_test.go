package ccsched

// Benchmark harness: one Benchmark per experiment row family of DESIGN.md's
// per-experiment index (E1–E8, F1–F5). cmd/ccbench regenerates the full
// tables with ratios; these benchmarks time the same code paths under
// testing.B so `go test -bench=. -benchmem` reproduces the measurements in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/exact"
	"ccsched/internal/experiments"
	"ccsched/internal/generator"
	"ccsched/internal/nfold"
	"ccsched/internal/ptas"
)

func benchInstance(n int, seed int64) *core.Instance {
	return generator.Uniform(generator.Config{
		N: n, Classes: n / 10, Machines: int64(n / 20), Slots: 3, PMax: 10000, Seed: seed,
	})
}

// E1: splittable 2-approximation across families and sizes.
func BenchmarkE1SplittableApprox(b *testing.B) {
	for _, fam := range generator.Families() {
		for _, n := range []int{100, 1000} {
			in := fam.Gen(generator.Config{N: n, Classes: n / 10, Machines: int64(n / 20), Slots: 3, PMax: 10000, Seed: 11})
			b.Run(fmt.Sprintf("%s/n=%d", fam.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := approx.SolveSplittable(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E1 parallel row: concurrent solves with per-call options. This is the
// workload that made the former ExplicitMachineLimit global a data race.
func BenchmarkE1SplittableApproxParallel(b *testing.B) {
	in := benchInstance(1000, 11)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := approx.SolveSplittableOpts(in, approx.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E1 huge-m row: the Theorem 4 compact construction.
func BenchmarkE1SplittableApproxHugeM(b *testing.B) {
	in := &core.Instance{
		P:     []int64{1 << 30, 1 << 29, 12345, 678},
		Class: []int{0, 1, 2, 3},
		M:     1 << 50,
		Slots: 2,
	}
	for i := 0; i < b.N; i++ {
		if _, err := approx.SolveSplittable(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E2: preemptive 2-approximation.
func BenchmarkE2PreemptiveApprox(b *testing.B) {
	for _, n := range []int{100, 1000} {
		in := benchInstance(n, 21)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := approx.SolvePreemptive(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3: non-preemptive 7/3-approximation.
func BenchmarkE3NonPreemptiveApprox(b *testing.B) {
	for _, n := range []int{100, 1000} {
		in := benchInstance(n, 31)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := approx.SolveNonPreemptive(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4: running-time scaling (doubling n; compare ns/op growth ≈ 4x).
func BenchmarkE4Scaling(b *testing.B) {
	for _, n := range []int{500, 1000, 2000, 4000} {
		in := benchInstance(n, 41)
		b.Run(fmt.Sprintf("splittable/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := approx.SolveSplittable(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("nonpreemptive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := approx.SolveNonPreemptive(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Lemma 2 ablation: border search vs plain integer binary search.
	in := benchInstance(2000, 42)
	b.Run("bordersearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := approx.BorderSearchBound(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plainsearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := approx.PlainIntegerBound(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E5: splittable PTAS per ε (the N-fold grows with 1/ε).
func BenchmarkE5SplittablePTAS(b *testing.B) {
	in := generator.Uniform(generator.Config{N: 12, Classes: 4, Machines: 3, Slots: 2, PMax: 50, Seed: 51})
	for _, eps := range []float64{1.0, 0.5} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ptas.SolveSplittable(context.Background(), in, ptas.Options{Epsilon: eps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	huge := &core.Instance{
		P:     []int64{900, 850, 400, 120, 60, 30},
		Class: []int{0, 1, 1, 2, 3, 3},
		M:     1 << 40,
		Slots: 1,
	}
	b.Run("hugeM/eps=0.5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ptas.SolveSplittable(context.Background(), huge, ptas.Options{Epsilon: 0.5}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E6: non-preemptive PTAS.
func BenchmarkE6NonPreemptivePTAS(b *testing.B) {
	in := generator.Uniform(generator.Config{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 61})
	for _, eps := range []float64{1.0, 0.5} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ptas.SolveNonPreemptive(context.Background(), in, ptas.Options{Epsilon: eps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7: preemptive PTAS (the heaviest construction; tiny instance).
func BenchmarkE7PreemptivePTAS(b *testing.B) {
	in := generator.Uniform(generator.Config{N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30, Seed: 71})
	for i := 0; i < b.N; i++ {
		if _, err := ptas.SolvePreemptive(context.Background(), in, ptas.Options{Epsilon: 0.5, MaxNodes: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

// E8: N-fold engines on the splittable configuration ILP.
func BenchmarkE8NFold(b *testing.B) {
	in := generator.Uniform(generator.Config{N: 14, Classes: 4, Machines: 3, Slots: 2, PMax: 60, Seed: 81})
	prob, err := ptas.BuildSplittableNFold(in, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("augment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nfold.Solve(prob, &nfold.Options{Engine: nfold.EngineAugment}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("branchbound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Node-capped, as the PTAS probes run it; an uncapped first-
			// feasible dive on this N-fold takes tens of seconds.
			if _, err := nfold.Solve(prob, &nfold.Options{Engine: nfold.EngineBranchBound, FirstFeasible: true, MaxNodes: 2000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E10: the PTAS tier end to end under the PR 4 warm-start pipeline
// (template/instantiate construction, pooled simplex scratch, basis reuse
// across branch-and-bound nodes). The cold sub-benchmarks set NoWarmStart —
// results are bit-identical by construction (see the warm parity tests), so
// the ns/op delta is pure warm-start effect; the warm rows also report the
// branch-and-bound work via b.ReportMetric. Sequential and uncached so the
// numbers measure the solver, not speculation or memoization.
func BenchmarkE10PTASTier(b *testing.B) {
	run := func(b *testing.B, variant string, n int, warm bool) {
		in := benchInstance(n, 101)
		opts := ptas.Options{Epsilon: 1, Parallelism: 1, NoWarmStart: !warm}
		var nodes, pivots, hits int64
		for i := 0; i < b.N; i++ {
			var rep ptas.Report
			switch variant {
			case "splittable":
				r, err := ptas.SolveSplittable(context.Background(), in, opts)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			case "preemptive":
				r, err := ptas.SolvePreemptive(context.Background(), in, opts)
				if err != nil {
					b.Fatal(err)
				}
				rep = r.Report
			}
			nodes += rep.BBNodes
			pivots += rep.BBPivots
			hits += rep.WarmHits
		}
		b.ReportMetric(float64(nodes)/float64(b.N), "bbnodes/op")
		b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
		if warm && nodes > 0 {
			b.ReportMetric(float64(hits)/float64(nodes), "warmhit-rate")
		}
	}
	for _, variant := range []string{"splittable", "preemptive"} {
		for _, n := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/n=%d/warm", variant, n), func(b *testing.B) { run(b, variant, n, true) })
			b.Run(fmt.Sprintf("%s/n=%d/cold", variant, n), func(b *testing.B) { run(b, variant, n, false) })
		}
	}
	// A δ = 1/2 row where the exact engine branches for real: this is the
	// node-heavy regime the cross-node basis reuse targets.
	b.Run("splittable/n=60/eps=0.5/warm", func(b *testing.B) {
		benchE10Fine(b, false)
	})
	b.Run("splittable/n=60/eps=0.5/cold", func(b *testing.B) {
		benchE10Fine(b, true)
	})
}

func benchE10Fine(b *testing.B, noWarm bool) {
	in := benchInstance(60, 101)
	opts := ptas.Options{Epsilon: 0.5, Parallelism: 1, MaxNodes: 1500, NoWarmStart: noWarm}
	var nodes, pivots, hits int64
	for i := 0; i < b.N; i++ {
		r, err := ptas.SolveSplittable(context.Background(), in, opts)
		if err != nil {
			b.Fatal(err)
		}
		nodes += r.Report.BBNodes
		pivots += r.Report.BBPivots
		hits += r.Report.WarmHits
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "bbnodes/op")
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
	if !noWarm && nodes > 0 {
		b.ReportMetric(float64(hits)/float64(nodes), "warmhit-rate")
	}
}

// E11: intra-probe parallelism (PR 7). Two workloads at EngineParallelism
// 1/2/4, everything else held fixed:
//
//   - nodeheavy: the E10 δ = 1/2 row (n=60, MaxNodes 1500) where the exact
//     engine branches for real — the regime the subtree workers and batched
//     sibling LPs target;
//   - redrawchurn: a deterministic redraw-churn derivative — three drifted
//     instances from the PR 5 adversarial workload, each solved cold — so
//     the brick scans and subtree workers run on the augmented shapes churn
//     actually produces, with identical work every op.
//
// Results are bit-identical at any worker count (the parity tier proves
// it), so ns/op deltas are pure parallelism effect. Only the ep=1 rows are
// gated by scripts/benchdiff: speedup rows need real CPUs, and the baseline
// host may not have them (benchdiff skips rows whose ep exceeds the host's
// CPU count, with a logged reason). Run with -cpu to pin GOMAXPROCS.
func BenchmarkE11EngineParallelism(b *testing.B) {
	for _, ep := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodeheavy/ep=%d", ep), func(b *testing.B) {
			in := benchInstance(60, 101)
			opts := ptas.Options{Epsilon: 0.5, Parallelism: 1, MaxNodes: 1500, EngineParallelism: ep}
			var nodes, steals, batched int64
			for i := 0; i < b.N; i++ {
				r, err := ptas.SolveSplittable(context.Background(), in, opts)
				if err != nil {
					b.Fatal(err)
				}
				nodes += r.Report.BBNodes
				steals += r.Report.BBSubtreeSteals
				batched += r.Report.BatchedLPSolves
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "bbnodes/op")
			if ep > 1 {
				b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
				b.ReportMetric(float64(batched)/float64(b.N), "batched/op")
			}
		})
	}
	// Drifted instances are precomputed so every op does identical work —
	// unlike the live redraw benchmark, whose per-round cost varies too much
	// to gate (see BenchmarkSessionChurnRedraw).
	drifted := make([]*Instance, 3)
	base, err := Generate("uniform", GeneratorConfig{
		N: churnN, Classes: churnClasses, Machines: churnM, Slots: churnSlots, PMax: churnPMax, Seed: 101,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := range drifted {
		applyChurnToInstance(base, churnRound(i, base.N()))
		cp := *base
		cp.P = append([]int64(nil), base.P...)
		cp.Class = append([]int(nil), base.Class...)
		drifted[i] = &cp
	}
	for _, ep := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("redrawchurn/ep=%d", ep), func(b *testing.B) {
			opts := Options{
				Variant: Splittable, Tier: TierPTAS, Epsilon: 1,
				Parallelism: 1, EngineParallelism: ep, MaxNodes: 400, NoCache: true,
			}
			for i := 0; i < b.N; i++ {
				for _, in := range drifted {
					if _, err := Solve(context.Background(), in, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// E12: the anytime tier (PR 10). Two figures of merit:
//
//   - first-answer/n=1000: the instant bounded answer. Tier "anytime"
//     returns the certified 2-approx synchronously, tagged as rung 0 of
//     the ε-ladder; the acceptance bar is 50ms at n=1000 and the
//     measurement is well under 1ms. Gated by scripts/benchdiff.
//   - ladder rows: SolveAnytime driven through the whole ladder,
//     reporting ms-to-first-answer, ms-to-gap≤10% (when the certified
//     gap gets there) and ms-to-final via ReportMetric. Ungated — the
//     reported metrics, not ns/op, are the signal, and the terminal rung
//     cost is already gated as E10.
//
// The ladder instances are chosen from the gap survey in DESIGN.md: the
// non-preemptive uniform row is the strictly-improving case (every
// published rung shrinks the gap: 2-approx 498 → ε=1 PTAS 468), and the
// thirds row is the tight-lower-bound case where the first answer is
// already within 10% (certified gap ≈ 2.2% at rung 0) — there
// time-to-gap≤10% equals time-to-first-answer by construction.
func BenchmarkE12AnytimeFirstAnswer(b *testing.B) {
	b.Run("first-answer/n=1000", func(b *testing.B) {
		in := benchInstance(1000, 111)
		opts := Options{Variant: Splittable, Tier: TierAnytime, Epsilon: 0.5, NoCache: true}
		for i := 0; i < b.N; i++ {
			res, err := Solve(context.Background(), in, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Anytime == nil || res.Anytime.Rung != 0 || res.LowerBound == nil {
				b.Fatal("first answer not tagged as ladder rung 0 with a certified bound")
			}
		}
	})
	ladder := func(b *testing.B, in *core.Instance, opts Options) {
		var msFirst, msGap10, msFinal, finalGap float64
		gap10Hits := 0
		for i := 0; i < b.N; i++ {
			start := time.Now()
			first, gap10 := -1.0, -1.0
			res, err := SolveAnytime(context.Background(), in, opts, func(r *Result) {
				at := float64(time.Since(start)) / float64(time.Millisecond)
				if first < 0 {
					first = at
				}
				if gap10 < 0 && r.Anytime != nil && r.Anytime.Gap <= 0.10 {
					gap10 = at
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil || res.Anytime == nil || !res.Anytime.Final {
				b.Fatal("ladder did not end on a final result")
			}
			msFinal += float64(time.Since(start)) / float64(time.Millisecond)
			msFirst += first
			finalGap += res.Anytime.Gap
			if gap10 >= 0 {
				msGap10 += gap10
				gap10Hits++
			}
		}
		n := float64(b.N)
		b.ReportMetric(msFirst/n, "ms-to-first")
		b.ReportMetric(msFinal/n, "ms-to-final")
		b.ReportMetric(finalGap/n, "final-gap")
		if gap10Hits == b.N {
			b.ReportMetric(msGap10/n, "ms-to-gap10")
		}
	}
	b.Run("ladder/nonpreemptive/n=24", func(b *testing.B) {
		in := generator.Uniform(generator.Config{N: 24, Classes: 4, Machines: 3, Slots: 2, PMax: 100, Seed: 1})
		ladder(b, in, Options{Variant: NonPreemptive, Tier: TierAnytime, Epsilon: 1, NoCache: true})
	})
	b.Run("ladder/thirds/n=100", func(b *testing.B) {
		in := generator.AdversarialThirds(generator.Config{N: 100, Classes: 10, Machines: 5, Slots: 3, PMax: 10000, Seed: 11})
		ladder(b, in, Options{Variant: Splittable, Tier: TierAnytime, Epsilon: 1, NoCache: true})
	})
}

// Exact baselines used by E3/E6 ratio columns.
func BenchmarkExactNonPreemptive(b *testing.B) {
	in := generator.Uniform(generator.Config{N: 12, Classes: 3, Machines: 3, Slots: 2, PMax: 50, Seed: 82})
	for i := 0; i < b.N; i++ {
		if _, _, err := exact.NonPreemptive(in); err != nil {
			b.Fatal(err)
		}
	}
}

// F1: Figure 1 round-robin construction.
func BenchmarkF1RoundRobin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F1RoundRobin(); err != nil {
			b.Fatal(err)
		}
	}
}

// F2: Figure 2 preemptive repacking.
func BenchmarkF2Repack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F2Repack(); err != nil {
			b.Fatal(err)
		}
	}
}

// F3: Figure 3 trivial configurations under exponential m.
func BenchmarkF3PairSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F3PairSwap(); err != nil {
			b.Fatal(err)
		}
	}
}

// F5: Figure 5 / Lemma 16 flow network.
func BenchmarkF5Flow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F5FlowNetwork(); err != nil {
			b.Fatal(err)
		}
	}
}

// Core substrate micro-benchmarks.
func BenchmarkLowerBound(b *testing.B) {
	in := benchInstance(1000, 91)
	for _, v := range core.Variants {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LowerBound(in, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkValidateSchedules(b *testing.B) {
	in := benchInstance(1000, 92)
	sres, err := approx.SolveSplittable(in)
	if err != nil {
		b.Fatal(err)
	}
	pres, err := approx.SolvePreemptive(in)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("splittable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sres.Compact.Validate(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("preemptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := pres.Schedule.Validate(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
