package ccsched

// Differential tests for the int64 fast-path migration: the rat.R arithmetic
// must be *exact*, so every solver's rational outputs (guess and makespan,
// compared as rationals, never as floats) must be bit-identical to what the
// pre-migration pure *big.Rat pipeline produced. The reference below is a
// verbatim big.Rat re-implementation of the guess computation (area lower
// bound and Lemma 2 border search) that the solvers previously ran on
// *big.Rat; schedules themselves are cross-checked by exact validation and
// by comparing the explicit and compact forms piece by piece.

import (
	"fmt"
	"math/big"
	"testing"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/generator"
)

// refSlotsNeeded is the pre-migration ⌈pu/t⌉ on pure big arithmetic.
func refSlotsNeeded(pu int64, t *big.Rat) int64 {
	num := new(big.Int).Mul(big.NewInt(pu), t.Denom())
	q, r := new(big.Int).QuoRem(num, t.Num(), new(big.Int))
	if r.Sign() != 0 {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}

func refTotalSlots(loads []int64, t *big.Rat, limit int64) int64 {
	var sum int64
	for _, pu := range loads {
		need := refSlotsNeeded(pu, t)
		if need > limit || sum > limit-need {
			return limit + 1
		}
		sum += need
	}
	return sum
}

// refBorderBound re-implements core.SlotLowerBoundSplit on pure *big.Rat,
// mirroring the pre-migration code path exactly.
func refBorderBound(t *testing.T, in *core.Instance) *big.Rat {
	t.Helper()
	if err := core.CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
	loads := in.ClassLoads()
	budget := int64(in.Slots)
	const sentinel = int64(1) << 60
	if in.M > sentinel/budget {
		budget = sentinel
	} else {
		budget *= in.M
	}
	best := new(big.Rat)
	for _, pu := range loads {
		if cand := new(big.Rat).SetInt64(pu); cand.Cmp(best) > 0 {
			best = cand
		}
	}
	if best.Sign() == 0 {
		return best
	}
	kmax := in.M
	if n := int64(in.N()) + in.M; kmax > n || kmax < 0 {
		kmax = n
	}
	for _, pu := range loads {
		if pu == 0 {
			continue
		}
		if refTotalSlots(loads, new(big.Rat).SetInt64(pu), budget) > budget {
			continue
		}
		lo, hi := int64(1), kmax
		for lo < hi {
			mid := lo + (hi-lo+1)/2
			if refTotalSlots(loads, big.NewRat(pu, mid), budget) <= budget {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		if cand := big.NewRat(pu, lo); cand.Cmp(best) < 0 {
			best = cand
		}
	}
	return best
}

// refSplittableGuess is the pre-migration T̂ = max(Σp/m, border).
func refSplittableGuess(t *testing.T, in *core.Instance) *big.Rat {
	area := big.NewRat(in.TotalLoad(), in.M)
	border := refBorderBound(t, in)
	if border.Cmp(area) > 0 {
		return border
	}
	return area
}

func diffInstances(t *testing.T) map[string]*core.Instance {
	t.Helper()
	out := make(map[string]*core.Instance)
	for _, fam := range generator.Families() {
		for seed := int64(1); seed <= 5; seed++ {
			in := fam.Gen(generator.Config{
				N: 60, Classes: 8, Machines: 7, Slots: 2, PMax: 500, Seed: seed,
			})
			out[fmt.Sprintf("%s/seed=%d", fam.Name, seed)] = in
		}
	}
	return out
}

// TestDifferentialSplittableGuess proves the fast-path guess is bit-identical
// to the big.Rat reference on all six generator families, seeds 1–5.
func TestDifferentialSplittableGuess(t *testing.T) {
	for name, in := range diffInstances(t) {
		t.Run(name, func(t *testing.T) {
			res, err := ApproxSplittable(in)
			if err != nil {
				t.Fatal(err)
			}
			want := refSplittableGuess(t, in)
			if res.Guess.Cmp(want) != 0 {
				t.Errorf("fast-path guess %s != big.Rat reference %s",
					res.Guess.RatString(), want.RatString())
			}
			// The border bound itself must also agree exactly.
			border, err := core.SlotLowerBoundSplit(in)
			if err != nil {
				t.Fatal(err)
			}
			if ref := refBorderBound(t, in); border.Cmp(ref) != 0 {
				t.Errorf("fast-path border %s != reference %s", border.RatString(), ref.RatString())
			}
		})
	}
}

// TestDifferentialSolverMakespans runs all three constant-factor solvers on
// every family/seed pair and checks the emitted rational makespans exactly:
// schedules validate under exact arithmetic, the explicit and compact
// splittable forms agree as rationals, and the preemptive guess matches its
// reference max(p_max, area, border).
func TestDifferentialSolverMakespans(t *testing.T) {
	for name, in := range diffInstances(t) {
		t.Run(name, func(t *testing.T) {
			sres, err := ApproxSplittable(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := sres.Compact.Validate(in); err != nil {
				t.Fatalf("splittable compact invalid: %v", err)
			}
			if sres.Explicit != nil {
				if err := sres.Explicit.Validate(in); err != nil {
					t.Fatalf("splittable explicit invalid: %v", err)
				}
				if sres.Explicit.Makespan().Cmp(sres.Compact.Makespan()) != 0 {
					t.Errorf("explicit makespan %s != compact %s",
						sres.Explicit.Makespan().RatString(), sres.Compact.Makespan().RatString())
				}
			}
			// The compact construction path (forced via the options struct)
			// must produce the same guess and a validating schedule too.
			cres, err := approx.SolveSplittableOpts(in, approx.Options{ExplicitMachineLimit: 1})
			if err != nil {
				t.Fatal(err)
			}
			if cres.Guess.Cmp(sres.Guess) != 0 {
				t.Errorf("compact-path guess %s != explicit-path %s",
					cres.Guess.RatString(), sres.Guess.RatString())
			}
			if err := cres.Compact.Validate(in); err != nil {
				t.Fatalf("forced compact invalid: %v", err)
			}

			pres, err := ApproxPreemptive(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := pres.Schedule.Validate(in); err != nil {
				t.Fatalf("preemptive invalid: %v", err)
			}
			if in.M < int64(in.N()) {
				want := refSplittableGuess(t, in)
				if pm := new(big.Rat).SetInt64(in.PMax()); pm.Cmp(want) > 0 {
					want = pm
				}
				if pres.Guess.Cmp(want) != 0 {
					t.Errorf("preemptive guess %s != reference %s",
						pres.Guess.RatString(), want.RatString())
				}
			}

			nres, err := ApproxNonPreemptive(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := nres.Schedule.Validate(in); err != nil {
				t.Fatalf("non-preemptive invalid: %v", err)
			}
		})
	}
}
