package ccsched

// Resilience contract at the library boundary: engine panics surface as
// typed internal errors (with stack and span, never a dead process), and the
// degraded-tier fallback answers with the certified 2-approximation on every
// workload family when the full tier cannot finish.

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"ccsched/internal/faultinject"
	"ccsched/internal/generator"
)

// TestFaultInjectedPanicBecomesErrInternal arms panic faults at engine
// injection points and checks each solve returns an error wrapping
// ErrInternal — concrete type *InternalError carrying the recovered stack —
// and that the very next un-faulted solve of the same instance succeeds with
// the unfaulted baseline makespan (no poisoned state left behind).
func TestFaultInjectedPanicBecomesErrInternal(t *testing.T) {
	defer faultinject.Reset()
	cases := []struct {
		point string
		opts  Options
		in    *Instance
	}{
		{
			point: "ptas.probe",
			opts:  Options{Variant: Splittable, Tier: TierPTAS, Epsilon: 0.5, EngineParallelism: 4},
			in:    generator.Uniform(generator.Config{N: 30, Classes: 5, Machines: 4, Slots: 2, PMax: 60, Seed: 7}),
		},
		{
			// ilp.node fires deep inside a probe's branch-and-bound; the
			// panic must climb through nfold and the guess search without
			// being absorbed by the approx fallback.
			point: "ilp.node",
			opts:  Options{Variant: NonPreemptive, Tier: TierPTAS, Epsilon: 0.5},
			in:    generator.Uniform(generator.Config{N: 12, Classes: 3, Machines: 3, Slots: 2, PMax: 50, Seed: 51}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			faultinject.Reset()
			// Every solve gets its own feasibility cache: a shared (or the
			// process-default) cache would let the faulted solve answer all
			// probes from the baseline's verdicts without ever reaching the
			// armed engine point.
			freshOpts := func() Options {
				o := tc.opts
				o.Cache = NewFeasibilityCache()
				return o
			}
			base, err := Solve(context.Background(), tc.in, freshOpts())
			if err != nil {
				t.Fatalf("baseline solve: %v", err)
			}
			if err := faultinject.Arm(tc.point, faultinject.Spec{Mode: faultinject.ModePanic, Msg: "chaos"}); err != nil {
				t.Fatal(err)
			}
			_, err = Solve(context.Background(), tc.in, freshOpts())
			if !errors.Is(err, ErrInternal) {
				t.Fatalf("faulted solve returned %v, want ErrInternal", err)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("error %v does not unwrap to *InternalError", err)
			}
			if len(ie.Stack) == 0 || ie.Span == "" {
				t.Fatalf("internal error missing diagnostics: span=%q stack=%d bytes", ie.Span, len(ie.Stack))
			}
			faultinject.Reset()
			res, err := Solve(context.Background(), tc.in, freshOpts())
			if err != nil {
				t.Fatalf("solve after fault cleared: %v", err)
			}
			if res.Makespan.Cmp(base.Makespan) != 0 {
				t.Fatalf("post-fault makespan %s != baseline %s", res.Makespan.RatString(), base.Makespan.RatString())
			}
		})
	}
}

// TestFallbackDegradedTwoApproxAllFamilies checks the degraded-tier fallback
// on every generator family: when the requested tier cannot run (the context
// is already canceled) and FallbackTier is TierApprox, Solve still answers —
// a degraded 2-approximation with a certified lower bound, makespan within
// twice that bound — and the full-tier solve of the same instance is
// deterministic (two runs agree bit for bit).
func TestFallbackDegradedTwoApproxAllFamilies(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	two := big.NewRat(2, 1)
	for i, fam := range generator.Families() {
		t.Run(fam.Name, func(t *testing.T) {
			in := fam.Gen(generator.Config{N: 40, Classes: 6, Machines: 4, Slots: 3, PMax: 80, Seed: int64(100 + i)})
			opts := Options{Variant: Splittable, Tier: TierPTAS, Epsilon: 0.5, FallbackTier: TierApprox}
			res, err := Solve(canceled, in, opts)
			if err != nil {
				t.Fatalf("fallback solve: %v", err)
			}
			if !res.Degraded || res.Tier != TierApprox {
				t.Fatalf("fallback result not degraded 2-approx: degraded=%v tier=%v", res.Degraded, res.Tier)
			}
			if res.LowerBound == nil {
				t.Fatal("degraded result missing certified lower bound")
			}
			bound := new(big.Rat).Mul(two, res.LowerBound)
			if res.Makespan.Cmp(bound) > 0 {
				t.Fatalf("degraded makespan %s > 2x lower bound %s", res.Makespan.RatString(), res.LowerBound.RatString())
			}
			if res.Makespan.Cmp(res.LowerBound) < 0 {
				t.Fatalf("makespan %s below its own lower bound %s", res.Makespan.RatString(), res.LowerBound.RatString())
			}
			// The full tier remains deterministic on the same instance.
			full1, err := Solve(context.Background(), in, opts)
			if err != nil {
				t.Fatalf("full solve: %v", err)
			}
			if full1.Degraded {
				t.Fatal("uncontended full solve reported degraded")
			}
			full2, err := Solve(context.Background(), in, opts)
			if err != nil {
				t.Fatalf("full solve (repeat): %v", err)
			}
			if full1.Makespan.Cmp(full2.Makespan) != 0 {
				t.Fatalf("full solve nondeterministic: %s vs %s", full1.Makespan.RatString(), full2.Makespan.RatString())
			}
		})
	}
}
