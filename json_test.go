package ccsched_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"ccsched"
)

// TestOptionsJSONRoundTrip checks Options survives the wire: variants and
// tiers as names, knobs as numbers, and the process-local Cache excluded.
func TestOptionsJSONRoundTrip(t *testing.T) {
	opts := ccsched.Options{
		Variant:     ccsched.NonPreemptive,
		Tier:        ccsched.TierPTAS,
		Epsilon:     0.25,
		Parallelism: 3,
		Cache:       ccsched.NewFeasibilityCache(),
		NoCache:     false,
		MaxNodes:    500,
		MaxConfigs:  9000,
	}
	data, err := json.Marshal(opts)
	if err != nil {
		t.Fatal(err)
	}
	var back ccsched.Options
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	want := opts
	want.Cache = nil // never serialized
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v\nwire %s", back, want, data)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["variant"] != "non-preemptive" || m["tier"] != "ptas" {
		t.Fatalf("wire names: variant=%v tier=%v", m["variant"], m["tier"])
	}
	if _, leaked := m["Cache"]; leaked {
		t.Fatal("Cache leaked into JSON")
	}
}

// TestResultJSONRoundTrip solves a small instance per variant and checks
// the Result JSON round-trips losslessly: exact rationals come back equal
// and the decoded schedule still validates against the instance.
func TestResultJSONRoundTrip(t *testing.T) {
	in := solveTestInstance(t, 20, 5, 4)
	for _, variant := range []ccsched.Variant{ccsched.Splittable, ccsched.Preemptive, ccsched.NonPreemptive} {
		res, err := ccsched.Solve(context.Background(), in, ccsched.Options{Variant: variant, Tier: ccsched.TierApprox})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		var back ccsched.Result
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if back.Variant != res.Variant || back.Tier != res.Tier {
			t.Fatalf("%v: variant/tier changed: %v/%v", variant, back.Variant, back.Tier)
		}
		if back.Makespan.Cmp(res.Makespan) != 0 || back.LowerBound.Cmp(res.LowerBound) != 0 {
			t.Fatalf("%v: rationals changed: %s/%s vs %s/%s",
				variant, back.Makespan, back.LowerBound, res.Makespan, res.LowerBound)
		}
		switch variant {
		case ccsched.Splittable:
			if err := back.CompactSplit.Validate(in); err != nil {
				t.Fatalf("%v: decoded schedule invalid: %v", variant, err)
			}
		case ccsched.Preemptive:
			if err := back.Preemptive.Validate(in); err != nil {
				t.Fatalf("%v: decoded schedule invalid: %v", variant, err)
			}
		case ccsched.NonPreemptive:
			if err := back.NonPreemptive.Validate(in); err != nil {
				t.Fatalf("%v: decoded schedule invalid: %v", variant, err)
			}
		}
	}
}

// TestSolveCanceledSentinel checks the ErrCanceled satellite: cancellation
// surfaces as an error satisfying both errors.Is(err, ErrCanceled) and the
// specific context error, with no variant-specific internals leaking.
func TestSolveCanceledSentinel(t *testing.T) {
	in := solveTestInstance(t, 20, 4, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ccsched.Solve(ctx, in, ccsched.Options{Variant: ccsched.Splittable})
	if !errors.Is(err, ccsched.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: got %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pre-canceled: %v claims DeadlineExceeded too", err)
	}

	big := cancelInstance(t)
	dctx, dcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer dcancel()
	_, err = ccsched.Solve(dctx, big, ccsched.Options{
		Variant: ccsched.NonPreemptive, Tier: ccsched.TierPTAS, Epsilon: 0.5, NoCache: true,
	})
	if !errors.Is(err, ccsched.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-solve deadline: got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}
