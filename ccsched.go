// Package ccsched is a Go implementation of "Approximation Algorithms for
// Scheduling with Class Constraints" (Jansen, Lassota, Maack, SPAA 2020).
//
// The Class-Constrained Scheduling problem assigns n jobs — each with a
// processing time and a class — to m identical machines so the makespan is
// minimized, under the constraint that every machine runs jobs from at most
// c distinct classes. Three placement semantics are supported: splittable,
// preemptive and non-preemptive (see Variant).
//
// Solve is the recommended entry point: it selects a variant and algorithm
// tier from an Options value, runs the PTAS makespan-guess search with
// speculative parallelism and a feasibility cache, honors
// context cancellation and deadlines down to the individual ILP iteration,
// and returns the schedule together with the certified lower bound.
//
// The underlying algorithm tiers from the paper remain available as thin
// wrappers:
//
//   - strongly polynomial constant-factor approximations —
//     ApproxSplittable and ApproxPreemptive guarantee 2·OPT,
//     ApproxNonPreemptive guarantees 7/3·OPT;
//   - polynomial-time approximation schemes (PTAS) with makespan
//     (1+ε)·OPT — PTASSplittable, PTASPreemptive, PTASNonPreemptive —
//     built on configuration ILPs with N-fold structure;
//   - exact optima for small instances (ratio measurement) in
//     ExactNonPreemptive and ExactSplittable.
//
// Certified lower bounds live in LowerBound. Instances can be built
// directly, parsed from the textual format (ParseInstance), or generated
// from the built-in workload families (Generate).
//
// Everything is pure Go standard library; the LP/ILP/N-fold machinery the
// paper depends on is implemented in the internal packages of this module.
// See docs/ARCHITECTURE.md for the paper-to-code map.
package ccsched

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/exact"
	"ccsched/internal/generator"
	"ccsched/internal/hetslots"
	"ccsched/internal/panicsafe"
	"ccsched/internal/ptas"
	"ccsched/internal/rat"
	"ccsched/internal/trace"
)

// Core model re-exports.
type (
	// Instance is a CCS instance: processing times, classes, m machines
	// with c class slots each.
	Instance = core.Instance
	// Variant selects splittable, preemptive or non-preemptive semantics.
	Variant = core.Variant
	// SplitSchedule is an explicit splittable schedule.
	SplitSchedule = core.SplitSchedule
	// SplitPiece is one fragment of a job in a SplitSchedule.
	SplitPiece = core.SplitPiece
	// PreemptivePiece is one fragment of a job in a PreemptiveSchedule.
	PreemptivePiece = core.PreemptivePiece
	// CompactSplitSchedule run-length encodes splittable schedules for
	// exponential machine counts.
	CompactSplitSchedule = core.CompactSplitSchedule
	// MachineGroup is a run of identical machines in a CompactSplitSchedule.
	MachineGroup = core.MachineGroup
	// GroupPiece is one per-machine piece in a MachineGroup.
	GroupPiece = core.GroupPiece
	// PreemptiveSchedule carries explicit piece start times.
	PreemptiveSchedule = core.PreemptiveSchedule
	// NonPreemptiveSchedule maps each job to one machine.
	NonPreemptiveSchedule = core.NonPreemptiveSchedule
	// GeneratorConfig parameterizes the workload families.
	GeneratorConfig = generator.Config
	// PTASOptions configures the approximation schemes.
	PTASOptions = ptas.Options
	// PTASReport carries per-run diagnostics of a PTAS solve (accepted
	// guess, probes tried, N-fold parameters, engine, cache hits).
	PTASReport = ptas.Report
	// ApproxOptions configures the constant-factor splittable solver.
	ApproxOptions = approx.Options
	// FeasibilityCache memoizes makespan-guess feasibility verdicts across
	// Solve calls; see NewFeasibilityCache. Safe for concurrent use.
	FeasibilityCache = ptas.Cache
	// SolveTrace is the hierarchical span timeline a traced Solve attaches
	// to Result.Trace: per-stage wall times (guess search, probes, N-fold
	// engines, B&B batches) with the layer's counters as span attributes.
	// See Options.Trace; internal/trace documents the format and bounds.
	SolveTrace = trace.Trace
	// TraceSpan is one span of a SolveTrace.
	TraceSpan = trace.SpanRecord
	// TraceAttr is one int64 attribute on a TraceSpan.
	TraceAttr = trace.Attr
	// TraceAggregate is a summary row for spans beyond the per-solve cap.
	TraceAggregate = trace.Aggregate
	// Rat is the exact rational used for schedule piece sizes and start
	// times: an immutable int64-fraction value type that transparently
	// falls back to *big.Rat on overflow (see internal/rat). Results at
	// the API boundary (Makespan, Guess, LB, LowerBound) remain *big.Rat;
	// use RatValue / RatFromBig to convert when building schedules by
	// hand.
	Rat = rat.R
)

// RatValue returns num/den as a schedule-piece rational. den must be
// nonzero.
func RatValue(num, den int64) Rat { return rat.Frac(num, den) }

// RatFromBig converts a *big.Rat into a schedule-piece rational.
func RatFromBig(x *big.Rat) Rat { return rat.FromBig(x) }

// Variant constants.
const (
	Splittable    = core.Splittable
	Preemptive    = core.Preemptive
	NonPreemptive = core.NonPreemptive
)

// ErrInfeasible reports C > c·m (no schedule exists at any makespan).
var ErrInfeasible = core.ErrInfeasible

// ErrCanceled reports that Solve stopped because its context was canceled
// or its deadline expired before a schedule was produced. The returned
// error wraps both ErrCanceled and the underlying context.Canceled or
// context.DeadlineExceeded, so callers can branch deterministically:
//
//	errors.Is(err, ccsched.ErrCanceled)          // any cancellation
//	errors.Is(err, context.DeadlineExceeded)     // deadline specifically
//
// Services map it to a timeout/canceled status (e.g. HTTP 408 vs 499)
// without inspecting variant-specific internal error strings.
var ErrCanceled = errors.New("ccsched: solve canceled")

// ErrInternal reports that a panic fired somewhere in the solver and was
// recovered instead of killing the process: Solve converts panics — its
// own, and those of every engine worker goroutine (speculative guess
// probes, branch-and-bound subtree workers, brick-scan workers) — into an
// error wrapping this sentinel. The concrete error is an *InternalError
// carrying the panic value, the stack captured at the recovery site and
// the label of the component that panicked; extract it with errors.As.
// Services map ErrInternal to HTTP 500 and quarantine request keys that
// hit it repeatedly.
var ErrInternal = panicsafe.ErrInternal

// InternalError is the typed error behind ErrInternal: the recovered panic
// value, the goroutine stack captured where the panic was caught, and the
// component label (mirroring the solve-trace span names) that panicked.
type InternalError = panicsafe.Error

// ErrTooLarge reports an instance beyond the exact solvers' enforced size
// limits (ExactNonPreemptive: > 24 jobs; ExactSplittable: C > 6 or m > 6).
// The exact solvers return it — wrapped with the offending dimensions —
// instead of running for an unbounded time; test with errors.Is.
var ErrTooLarge = exact.ErrTooLarge

// ParseInstance reads the textual instance format.
func ParseInstance(s string) (*Instance, error) { return core.ParseInstance(s) }

// FormatInstance renders an instance in the textual format.
func FormatInstance(in *Instance) string { return core.FormatInstance(in) }

// CheckFeasible reports whether any schedule exists (C ≤ c·m).
func CheckFeasible(in *Instance) error { return core.CheckFeasible(in) }

// LowerBound returns a certified lower bound on the optimal makespan,
// combining the area, p_max and class-slot-counting arguments.
func LowerBound(in *Instance, v Variant) (*big.Rat, error) { return core.LowerBound(in, v) }

// Generate produces an instance from the named workload family
// ("uniform", "zipf", "fewlarge", "unitclasses", "thirds", "tightslots").
func Generate(family string, cfg GeneratorConfig) (*Instance, error) {
	f, err := generator.ByName(family)
	if err != nil {
		return nil, err
	}
	return f.Gen(cfg), nil
}

// GeneratorFamilies lists the built-in workload family names.
func GeneratorFamilies() []string {
	var out []string
	for _, f := range generator.Families() {
		out = append(out, f.Name)
	}
	return out
}

// ApproxSplittable runs Algorithm 1 (Theorem 4): a 2-approximation for the
// splittable variant in O(n² log n), valid for any machine count. The
// result always carries a compact schedule; an explicit one is included
// when m is moderate.
func ApproxSplittable(in *Instance) (*approx.SplitResult, error) {
	return approx.SolveSplittable(in)
}

// ApproxSplittableOpts is ApproxSplittable with explicit options (e.g. the
// explicit-machine limit). Options are per-call values, so concurrent
// solves with different options are race-free.
func ApproxSplittableOpts(in *Instance, opts ApproxOptions) (*approx.SplitResult, error) {
	return approx.SolveSplittableOpts(in, opts)
}

// ApproxPreemptive runs Algorithm 1 + 2 (Theorem 5): a 2-approximation for
// the preemptive variant in O(n² log n).
func ApproxPreemptive(in *Instance) (*approx.PreemptiveResult, error) {
	return approx.SolvePreemptive(in)
}

// ApproxNonPreemptive runs the Theorem 6 algorithm: a 7/3-approximation for
// the non-preemptive variant in O(n² log² n).
func ApproxNonPreemptive(in *Instance) (*approx.NonPreemptiveResult, error) {
	return approx.SolveNonPreemptive(in)
}

// PTASSplittable runs the splittable approximation scheme (Theorems 10/11).
// It is a thin wrapper over the Solve pipeline without a context; use Solve
// for cancellation, parallel guess search and caching.
func PTASSplittable(in *Instance, opts PTASOptions) (*ptas.SplitResult, error) {
	return ptas.SolveSplittable(context.Background(), in, opts)
}

// PTASPreemptive runs the preemptive approximation scheme (Theorem 19). It
// is a thin wrapper over the Solve pipeline without a context; use Solve
// for cancellation, parallel guess search and caching.
func PTASPreemptive(in *Instance, opts PTASOptions) (*ptas.PreemptiveResult, error) {
	return ptas.SolvePreemptive(context.Background(), in, opts)
}

// PTASNonPreemptive runs the non-preemptive approximation scheme
// (Theorem 14). It is a thin wrapper over the Solve pipeline without a
// context; use Solve for cancellation, parallel guess search and caching.
func PTASNonPreemptive(in *Instance, opts PTASOptions) (*ptas.NonPreemptiveResult, error) {
	return ptas.SolveNonPreemptive(context.Background(), in, opts)
}

// ExactNonPreemptive computes an optimal non-preemptive schedule for small
// instances by branch and bound. The documented limit (≤ 24 jobs) is
// enforced: larger inputs return an error wrapping ErrTooLarge instead of
// silently running for an unbounded time.
func ExactNonPreemptive(in *Instance) (*NonPreemptiveSchedule, int64, error) {
	return exact.NonPreemptive(in)
}

// ExactSplittable computes the optimal splittable makespan for small
// instances by slot-pattern enumeration plus LP. The documented limit
// (C ≤ 6 and m ≤ 6) is enforced: larger inputs return an error wrapping
// ErrTooLarge instead of silently running for an unbounded time.
func ExactSplittable(in *Instance) (*big.Rat, error) {
	return exact.Splittable(in)
}

// HetSlotsInstance is the machine-dependent class-slot variant the paper's
// Section 5 poses as an open direction: machine i carries its own budget
// c_i.
type HetSlotsInstance = hetslots.Instance

// SolveHetSlots runs the slot-aware adaptation of the Theorem 6 framework
// on a heterogeneous-budget instance. No approximation guarantee is claimed
// (the general variant is open); the schedule is validated and the result
// reports the certified lower bound for ratio measurement.
func SolveHetSlots(in *HetSlotsInstance) (*hetslots.Result, error) {
	return hetslots.Solve(in)
}

// Tier selects the algorithm family Solve runs.
type Tier int

// The algorithm tiers of Solve, mirroring the paper's structure.
const (
	// TierAuto runs the PTAS, which already embeds the constant-factor
	// algorithm both as the search's upper bound and as a best-of floor —
	// the result is never worse than the approximation tier's.
	TierAuto Tier = iota
	// TierApprox runs only the strongly polynomial constant-factor
	// algorithm (Theorems 4–6): 2·OPT splittable/preemptive, 7/3·OPT
	// non-preemptive.
	TierApprox
	// TierPTAS runs the approximation scheme (Theorems 10/11, 14, 19):
	// makespan at most (1+O(ε))·OPT via the configuration-ILP guess search.
	TierPTAS
	// TierExact runs the exact solvers, which enforce the documented size
	// limits (ErrTooLarge) and support only the non-preemptive and
	// splittable variants.
	TierExact
	// TierAnytime answers immediately with the constant-factor tier's
	// schedule (milliseconds, carrying the certified LowerBound and the
	// implied optimality gap), tagged with Result.Anytime describing the
	// ε-ladder that refines it. Solve returns only that first answer; the
	// background descent through the ladder is driven rung by rung via
	// Session.Ladder (each improvement replacing the session's current
	// result atomically), and the terminal rung is bit-identical to a cold
	// TierPTAS solve at Options.Epsilon.
	TierAnytime
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierApprox:
		return "approx"
	case TierPTAS:
		return "ptas"
	case TierExact:
		return "exact"
	case TierAnytime:
		return "anytime"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Options configures a Solve call. The zero value solves the splittable
// variant with TierAuto, ε = 0.5, hardware parallelism and the shared
// default feasibility cache.
type Options struct {
	// Variant selects splittable (default), preemptive or non-preemptive
	// semantics.
	Variant Variant `json:"variant"`
	// Tier selects the algorithm family; see the Tier constants.
	Tier Tier `json:"tier"`
	// Epsilon is the PTAS accuracy target (makespan ≤ (1+O(ε))·OPT). Zero
	// selects 0.5. Ignored by TierApprox and TierExact.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Parallelism is the number of concurrent speculative makespan-guess
	// probes in the PTAS search. Zero selects runtime.GOMAXPROCS(0); 1 (or
	// any negative value) forces the sequential search. Any value returns
	// bit-identical schedules — speculation only reorders work, never
	// which probes decide the outcome.
	Parallelism int `json:"parallelism,omitempty"`
	// EngineParallelism is the number of goroutines each N-fold solve may
	// use internally (PTAS tiers only): concurrent augmentation brick scans
	// merged deterministically, plus speculative branch-and-bound subtree
	// workers behind a sequential committer. Orthogonal to Parallelism,
	// which races whole makespan-guess probes against each other. Zero or
	// one runs every engine serially (the default — intra-engine parallelism
	// is opt-in); any value returns bit-identical schedules, probe counts
	// and reports.
	EngineParallelism int `json:"engine_parallelism,omitempty"`
	// Cache overrides the feasibility cache. Nil selects a process-wide
	// shared cache (see NewFeasibilityCache to isolate workloads); set
	// NoCache to disable caching entirely. Never serialized: a cache is a
	// process-local object, so JSON clients always get the server's cache
	// policy.
	Cache *FeasibilityCache `json:"-"`
	// NoCache disables guess-feasibility caching for this call.
	NoCache bool `json:"no_cache,omitempty"`
	// MaxNodes caps the exact N-fold engine's branch-and-bound nodes per
	// guess probe (PTAS tiers only).
	MaxNodes int `json:"max_nodes,omitempty"`
	// MaxConfigs guards the PTAS configuration enumeration per guess.
	MaxConfigs int `json:"max_configs,omitempty"`
	// HugeMThreshold is the machine count beyond which the splittable PTAS
	// switches to the Theorem 11 compact treatment.
	HugeMThreshold int64 `json:"huge_m_threshold,omitempty"`
	// ExplicitMachineLimit bounds the machine count for which the
	// splittable approximation materializes an explicit (per-machine)
	// schedule in addition to the compact one.
	ExplicitMachineLimit int64 `json:"explicit_machine_limit,omitempty"`
	// Trace attaches a span collector to this solve and returns the
	// recorded timeline in Result.Trace. Tracing is observational only: it
	// records wall times and existing counters, and a traced solve returns
	// bit-identical verdicts, guesses and schedules (pinned by the
	// trace-parity differential tests). Disabled, the instrumentation is a
	// single nil check per would-be span. Span cardinality per solve is
	// bounded; overflow aggregates into summary rows.
	Trace bool `json:"trace,omitempty"`
	// NoWarmStart disables the PTAS pipeline's warm-start reuse (LP basis
	// reuse across branch-and-bound nodes and probes). Results are
	// bit-identical either way — warm starts only recognize provably
	// infeasible subproblems faster — so this is a measurement baseline and
	// determinism escape hatch, not a semantic knob.
	NoWarmStart bool `json:"no_warm_start,omitempty"`
	// FallbackTier, when set to TierApprox, arms degraded fallback: if the
	// requested PTAS or exact tier is canceled by its context (deadline
	// expiry or cancellation) before producing a schedule, Solve runs the
	// strongly polynomial constant-factor tier — milliseconds, never
	// cancelable mid-solve — and returns its result with Result.Degraded
	// set instead of ErrCanceled. The degraded result still carries the
	// certified LowerBound, so callers always know the optimality gap they
	// accepted. Zero (TierAuto) disables fallback; values other than
	// TierApprox are rejected — only the constant-factor tier is fast
	// enough to be a fallback.
	FallbackTier Tier `json:"fallback_tier,omitempty"`
}

// defaultCache is the process-wide feasibility cache used when
// Options.Cache is nil: repeated Solve calls on identical workloads skip
// already-decided guess ILPs. It is bounded (see ptas.DefaultCacheEntries)
// and safe for concurrent use.
var defaultCache = NewFeasibilityCache()

// NewFeasibilityCache returns an empty, bounded, concurrency-safe cache of
// makespan-guess feasibility verdicts. Pass it via Options.Cache to isolate
// workloads from the process-wide default cache (or to share one cache
// across a controlled set of solves).
func NewFeasibilityCache() *FeasibilityCache { return ptas.NewCache() }

// Result is the unified Solve output. Exactly the schedule fields matching
// the requested variant are populated: Split and/or CompactSplit for
// Splittable (huge machine counts may carry only the compact form),
// Preemptive for Preemptive, NonPreemptive for NonPreemptive — except that
// TierExact's splittable solver proves only the optimal makespan.
type Result struct {
	// Variant echoes the solved variant.
	Variant Variant `json:"variant"`
	// Tier is the tier that ran (TierAuto resolves to TierPTAS).
	Tier Tier `json:"tier"`
	// Makespan is the achieved (or, for exact splittable, optimal)
	// makespan as an exact rational (serialized in "p/q" form).
	Makespan *big.Rat `json:"makespan"`
	// LowerBound is the certified lower bound on OPT for the variant; the
	// quotient Makespan/LowerBound bounds the approximation ratio achieved.
	LowerBound *big.Rat `json:"lower_bound"`
	// Split is the explicit splittable schedule, when materialized.
	Split *SplitSchedule `json:"split,omitempty"`
	// CompactSplit is the run-length splittable schedule (always present
	// for splittable approx/PTAS results, even for astronomical m).
	CompactSplit *CompactSplitSchedule `json:"compact_split,omitempty"`
	// Preemptive is the preemptive schedule with explicit start times.
	Preemptive *PreemptiveSchedule `json:"preemptive,omitempty"`
	// NonPreemptive is the one-machine-per-job assignment.
	NonPreemptive *NonPreemptiveSchedule `json:"non_preemptive,omitempty"`
	// Degraded reports that this result came from the FallbackTier (or a
	// serving layer's soft-deadline fallback) instead of the requested
	// tier: the makespan is the constant-factor tier's, within its proven
	// ratio of LowerBound, and Tier names the tier that actually ran.
	// Degraded results are served instead of an error, never silently — a
	// later solve of the same request at the full tier replaces them.
	Degraded bool `json:"degraded,omitempty"`
	// Report carries PTAS diagnostics (zero unless a PTAS tier ran).
	Report PTASReport `json:"report"`
	// Trace is the span timeline of this solve, present only when
	// Options.Trace was set (or the serving layer forced tracing on).
	Trace *SolveTrace `json:"trace,omitempty"`
	// Anytime describes this result's position on the TierAnytime ε-ladder
	// (nil for every other tier): which rung produced it, the live
	// optimality gap against LowerBound, and whether refinement is done.
	Anytime *AnytimeInfo `json:"anytime,omitempty"`
}

// Solve is the unified, context-aware entry point: it runs the tier and
// variant selected by opts and returns the schedule with its certified
// lower bound. The context cancels the solve promptly — the PTAS guess
// search and its N-fold ILP engines poll ctx at iteration boundaries (so
// cancellation takes effect within one augmentation iteration or
// branch-and-bound node even mid-ILP), and the exact tier polls it inside
// its exponential searches. TierApprox runs to completion: the
// constant-factor algorithms are strongly polynomial (milliseconds at
// n=1000), so ctx is only checked on entry. PTAS tiers probe several
// makespan guesses speculatively in parallel (Options.Parallelism) and
// memoize guess feasibility verdicts (Options.Cache); results are
// bit-identical to the sequential, uncached search for any setting of
// either knob.
func Solve(ctx context.Context, in *Instance, opts Options) (*Result, error) {
	return solveWith(ctx, in, opts, nil)
}

// solveWith is Solve with optional session warm state (nil for one-shot
// solves). Sessions thread their ptas.SessionState here; every reuse it
// enables is verdict-preserving, so the result is bit-identical to a
// stateless Solve of the same instance and options.
func solveWith(ctx context.Context, in *Instance, opts Options, st *ptas.SessionState) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch opts.Variant {
	case Splittable, Preemptive, NonPreemptive:
	default:
		return nil, fmt.Errorf("ccsched: unknown variant %v", opts.Variant)
	}
	switch opts.FallbackTier {
	case TierAuto, TierApprox:
	default:
		return nil, fmt.Errorf("ccsched: unsupported FallbackTier %v (only TierApprox can be a fallback)", opts.FallbackTier)
	}
	if err := ctx.Err(); err != nil {
		// A deadline already expired at entry is the fallback's best case:
		// the caller gets the degraded constant-factor answer immediately
		// instead of a guaranteed ErrCanceled.
		if opts.FallbackTier == TierApprox && opts.Tier != TierApprox {
			return solveFallback(in, opts)
		}
		return nil, wrapCanceled(err)
	}
	res, err := runTiers(ctx, in, opts, st)
	if err != nil {
		err = wrapCanceled(err)
		// Degraded fallback: the requested tier died at its deadline, but
		// the caller armed FallbackTier — answer with the milliseconds
		// constant-factor tier and its certified lower bound instead of
		// ErrCanceled. Only cancellation triggers it: infeasibility, size
		// limits and internal errors would fail the fallback identically
		// (or mask a bug), so they pass through.
		if errors.Is(err, ErrCanceled) && opts.FallbackTier == TierApprox && opts.Tier != TierApprox {
			return solveFallback(in, opts)
		}
		return nil, err
	}
	return res, nil
}

// runTiers dispatches the selected tier with tracing attached and the
// process-wide panic boundary in place: a panic anywhere below — this
// goroutine or an engine worker whose captured panic was re-raised here —
// returns as an error wrapping ErrInternal instead of unwinding the
// caller.
func runTiers(ctx context.Context, in *Instance, opts Options, st *ptas.SessionState) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, panicsafe.Capture(v, "solve")
		}
	}()
	var col *trace.Collector
	var root trace.Span
	if opts.Trace {
		col = trace.NewCollector(0)
		root = col.Root("solve")
	}
	lb, err := core.LowerBound(in, opts.Variant)
	if err != nil {
		return nil, err
	}
	res = &Result{Variant: opts.Variant, Tier: opts.Tier, LowerBound: lb}
	switch opts.Tier {
	case TierApprox:
		err = solveApprox(in, opts, res)
	case TierAuto, TierPTAS:
		res.Tier = TierPTAS
		err = solvePTAS(ctx, in, opts, st, res, root)
	case TierExact:
		err = solveExact(ctx, in, opts, res)
	case TierAnytime:
		// The anytime first answer IS the constant-factor tier, tagged with
		// its ladder position; refinement is the Ladder's job, not Solve's.
		err = solveAnytimeFirst(in, opts, res)
	default:
		return nil, fmt.Errorf("ccsched: unknown tier %v", opts.Tier)
	}
	if err != nil {
		return nil, err
	}
	if col != nil {
		root.End(
			trace.A("n", int64(in.N())),
			trace.A("m", int64(in.M)),
			trace.A("slots", int64(in.Slots)),
			trace.A("variant", int64(opts.Variant)),
			trace.A("tier", int64(res.Tier)),
		)
		res.Trace = col.Export()
	}
	return res, nil
}

// solveFallback runs the degraded constant-factor answer after the
// requested tier was canceled: same variant, TierApprox, Degraded set.
// The fallback ignores the (already dead) context — the constant-factor
// algorithms are strongly polynomial and finish in milliseconds. It is
// untraced: the trace of the canceled full-tier attempt died with it, and
// a degraded answer should cost nothing beyond the approx solve itself.
func solveFallback(in *Instance, opts Options) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, panicsafe.Capture(v, "solve_fallback")
		}
	}()
	lb, err := core.LowerBound(in, opts.Variant)
	if err != nil {
		return nil, err
	}
	res = &Result{Variant: opts.Variant, Tier: TierApprox, LowerBound: lb, Degraded: true}
	if err := solveApprox(in, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// wrapCanceled maps cancellation surfaced by any tier's internals onto the
// ErrCanceled sentinel, preserving the underlying context error for
// errors.Is. Non-cancellation errors pass through untouched.
func wrapCanceled(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// solveApprox dispatches the constant-factor tier.
func solveApprox(in *Instance, opts Options, res *Result) error {
	switch opts.Variant {
	case Splittable:
		r, err := approx.SolveSplittableOpts(in, ApproxOptions{ExplicitMachineLimit: opts.ExplicitMachineLimit})
		if err != nil {
			return err
		}
		res.Split, res.CompactSplit, res.Makespan = r.Explicit, r.Compact, r.Makespan()
	case Preemptive:
		r, err := approx.SolvePreemptive(in)
		if err != nil {
			return err
		}
		res.Preemptive, res.Makespan = r.Schedule, r.Makespan()
	case NonPreemptive:
		r, err := approx.SolveNonPreemptive(in)
		if err != nil {
			return err
		}
		res.NonPreemptive = r.Schedule
		res.Makespan = new(big.Rat).SetInt64(r.Makespan(in))
	}
	return nil
}

// solvePTAS dispatches the approximation-scheme tier with the parallel
// guess search and the feasibility cache resolved from opts. sp is the
// enclosing trace span (disabled when the solve is untraced).
func solvePTAS(ctx context.Context, in *Instance, opts Options, st *ptas.SessionState, res *Result, sp trace.Span) error {
	popts := ptas.Options{
		Epsilon:           opts.Epsilon,
		MaxNodes:          opts.MaxNodes,
		MaxConfigs:        opts.MaxConfigs,
		HugeMThreshold:    opts.HugeMThreshold,
		Parallelism:       opts.Parallelism,
		EngineParallelism: opts.EngineParallelism,
		NoWarmStart:       opts.NoWarmStart,
		Session:           st,
		Trace:             sp,
	}
	if popts.Epsilon == 0 {
		popts.Epsilon = 0.5
	}
	if popts.Parallelism == 0 {
		popts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if !opts.NoCache {
		popts.Cache = opts.Cache
		if popts.Cache == nil {
			popts.Cache = defaultCache
		}
	}
	switch opts.Variant {
	case Splittable:
		r, err := ptas.SolveSplittable(ctx, in, popts)
		if err != nil {
			return err
		}
		res.Split, res.CompactSplit, res.Makespan, res.Report = r.Schedule, r.Compact, r.Makespan(), r.Report
	case Preemptive:
		r, err := ptas.SolvePreemptive(ctx, in, popts)
		if err != nil {
			return err
		}
		res.Preemptive, res.Makespan, res.Report = r.Schedule, r.Makespan(), r.Report
	case NonPreemptive:
		r, err := ptas.SolveNonPreemptive(ctx, in, popts)
		if err != nil {
			return err
		}
		res.NonPreemptive, res.Report = r.Schedule, r.Report
		res.Makespan = new(big.Rat).SetInt64(r.Schedule.Makespan(in))
	}
	return nil
}

// solveExact dispatches the exact tier; size limits are enforced via
// ErrTooLarge and the preemptive variant has no exact solver. Both solvers
// poll ctx inside their exponential searches.
func solveExact(ctx context.Context, in *Instance, opts Options, res *Result) error {
	switch opts.Variant {
	case Splittable:
		opt, err := exact.SplittableCtx(ctx, in)
		if err != nil {
			return err
		}
		res.Makespan = opt
	case NonPreemptive:
		sched, opt, err := exact.NonPreemptiveCtx(ctx, in)
		if err != nil {
			return err
		}
		res.NonPreemptive = sched
		res.Makespan = new(big.Rat).SetInt64(opt)
	case Preemptive:
		return fmt.Errorf("ccsched: no exact solver for the preemptive variant; use TierPTAS with a small Epsilon")
	}
	return nil
}
