// Package ccsched is a Go implementation of "Approximation Algorithms for
// Scheduling with Class Constraints" (Jansen, Lassota, Maack, SPAA 2020).
//
// The Class-Constrained Scheduling problem assigns n jobs — each with a
// processing time and a class — to m identical machines so the makespan is
// minimized, under the constraint that every machine runs jobs from at most
// c distinct classes. Three placement semantics are supported: splittable,
// preemptive and non-preemptive (see Variant).
//
// The package offers the paper's two algorithm tiers:
//
//   - strongly polynomial constant-factor approximations —
//     ApproxSplittable and ApproxPreemptive guarantee 2·OPT,
//     ApproxNonPreemptive guarantees 7/3·OPT;
//   - polynomial-time approximation schemes (PTAS) with makespan
//     (1+ε)·OPT — PTASSplittable, PTASPreemptive, PTASNonPreemptive —
//     built on configuration ILPs with N-fold structure.
//
// Exact optima for small instances (ratio measurement) live in
// ExactNonPreemptive and ExactSplittable; certified lower bounds in
// LowerBound. Instances can be built directly, parsed from the textual
// format (ParseInstance), or generated from the built-in workload families
// (Generate).
//
// Everything is pure Go standard library; the LP/ILP/N-fold machinery the
// paper depends on is implemented in the internal packages of this module.
package ccsched

import (
	"math/big"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/exact"
	"ccsched/internal/generator"
	"ccsched/internal/hetslots"
	"ccsched/internal/ptas"
	"ccsched/internal/rat"
)

// Core model re-exports.
type (
	// Instance is a CCS instance: processing times, classes, m machines
	// with c class slots each.
	Instance = core.Instance
	// Variant selects splittable, preemptive or non-preemptive semantics.
	Variant = core.Variant
	// SplitSchedule is an explicit splittable schedule.
	SplitSchedule = core.SplitSchedule
	// SplitPiece is one fragment of a job in a SplitSchedule.
	SplitPiece = core.SplitPiece
	// PreemptivePiece is one fragment of a job in a PreemptiveSchedule.
	PreemptivePiece = core.PreemptivePiece
	// CompactSplitSchedule run-length encodes splittable schedules for
	// exponential machine counts.
	CompactSplitSchedule = core.CompactSplitSchedule
	// PreemptiveSchedule carries explicit piece start times.
	PreemptiveSchedule = core.PreemptiveSchedule
	// NonPreemptiveSchedule maps each job to one machine.
	NonPreemptiveSchedule = core.NonPreemptiveSchedule
	// GeneratorConfig parameterizes the workload families.
	GeneratorConfig = generator.Config
	// PTASOptions configures the approximation schemes.
	PTASOptions = ptas.Options
	// ApproxOptions configures the constant-factor splittable solver.
	ApproxOptions = approx.Options
	// Rat is the exact rational used for schedule piece sizes and start
	// times: an immutable int64-fraction value type that transparently
	// falls back to *big.Rat on overflow (see internal/rat). Results at
	// the API boundary (Makespan, Guess, LB, LowerBound) remain *big.Rat;
	// use RatValue / RatFromBig to convert when building schedules by
	// hand.
	Rat = rat.R
)

// RatValue returns num/den as a schedule-piece rational. den must be
// nonzero.
func RatValue(num, den int64) Rat { return rat.Frac(num, den) }

// RatFromBig converts a *big.Rat into a schedule-piece rational.
func RatFromBig(x *big.Rat) Rat { return rat.FromBig(x) }

// Variant constants.
const (
	Splittable    = core.Splittable
	Preemptive    = core.Preemptive
	NonPreemptive = core.NonPreemptive
)

// ErrInfeasible reports C > c·m (no schedule exists at any makespan).
var ErrInfeasible = core.ErrInfeasible

// ErrTooLarge reports an instance beyond the exact solvers' enforced size
// limits (ExactNonPreemptive: > 24 jobs; ExactSplittable: C > 6 or m > 6).
// The exact solvers return it — wrapped with the offending dimensions —
// instead of running for an unbounded time; test with errors.Is.
var ErrTooLarge = exact.ErrTooLarge

// ParseInstance reads the textual instance format.
func ParseInstance(s string) (*Instance, error) { return core.ParseInstance(s) }

// FormatInstance renders an instance in the textual format.
func FormatInstance(in *Instance) string { return core.FormatInstance(in) }

// CheckFeasible reports whether any schedule exists (C ≤ c·m).
func CheckFeasible(in *Instance) error { return core.CheckFeasible(in) }

// LowerBound returns a certified lower bound on the optimal makespan,
// combining the area, p_max and class-slot-counting arguments.
func LowerBound(in *Instance, v Variant) (*big.Rat, error) { return core.LowerBound(in, v) }

// Generate produces an instance from the named workload family
// ("uniform", "zipf", "fewlarge", "unitclasses", "thirds", "tightslots").
func Generate(family string, cfg GeneratorConfig) (*Instance, error) {
	f, err := generator.ByName(family)
	if err != nil {
		return nil, err
	}
	return f.Gen(cfg), nil
}

// GeneratorFamilies lists the built-in workload family names.
func GeneratorFamilies() []string {
	var out []string
	for _, f := range generator.Families() {
		out = append(out, f.Name)
	}
	return out
}

// ApproxSplittable runs Algorithm 1 (Theorem 4): a 2-approximation for the
// splittable variant in O(n² log n), valid for any machine count. The
// result always carries a compact schedule; an explicit one is included
// when m is moderate.
func ApproxSplittable(in *Instance) (*approx.SplitResult, error) {
	return approx.SolveSplittable(in)
}

// ApproxSplittableOpts is ApproxSplittable with explicit options (e.g. the
// explicit-machine limit). Options are per-call values, so concurrent
// solves with different options are race-free.
func ApproxSplittableOpts(in *Instance, opts ApproxOptions) (*approx.SplitResult, error) {
	return approx.SolveSplittableOpts(in, opts)
}

// ApproxPreemptive runs Algorithm 1 + 2 (Theorem 5): a 2-approximation for
// the preemptive variant in O(n² log n).
func ApproxPreemptive(in *Instance) (*approx.PreemptiveResult, error) {
	return approx.SolvePreemptive(in)
}

// ApproxNonPreemptive runs the Theorem 6 algorithm: a 7/3-approximation for
// the non-preemptive variant in O(n² log² n).
func ApproxNonPreemptive(in *Instance) (*approx.NonPreemptiveResult, error) {
	return approx.SolveNonPreemptive(in)
}

// PTASSplittable runs the splittable approximation scheme (Theorems 10/11).
func PTASSplittable(in *Instance, opts PTASOptions) (*ptas.SplitResult, error) {
	return ptas.SolveSplittable(in, opts)
}

// PTASPreemptive runs the preemptive approximation scheme (Theorem 19).
func PTASPreemptive(in *Instance, opts PTASOptions) (*ptas.PreemptiveResult, error) {
	return ptas.SolvePreemptive(in, opts)
}

// PTASNonPreemptive runs the non-preemptive approximation scheme
// (Theorem 14).
func PTASNonPreemptive(in *Instance, opts PTASOptions) (*ptas.NonPreemptiveResult, error) {
	return ptas.SolveNonPreemptive(in, opts)
}

// ExactNonPreemptive computes an optimal non-preemptive schedule for small
// instances by branch and bound. The documented limit (≤ 24 jobs) is
// enforced: larger inputs return an error wrapping ErrTooLarge instead of
// silently running for an unbounded time.
func ExactNonPreemptive(in *Instance) (*NonPreemptiveSchedule, int64, error) {
	return exact.NonPreemptive(in)
}

// ExactSplittable computes the optimal splittable makespan for small
// instances by slot-pattern enumeration plus LP. The documented limit
// (C ≤ 6 and m ≤ 6) is enforced: larger inputs return an error wrapping
// ErrTooLarge instead of silently running for an unbounded time.
func ExactSplittable(in *Instance) (*big.Rat, error) {
	return exact.Splittable(in)
}

// HetSlotsInstance is the machine-dependent class-slot variant the paper's
// Section 5 poses as an open direction: machine i carries its own budget
// c_i.
type HetSlotsInstance = hetslots.Instance

// SolveHetSlots runs the slot-aware adaptation of the Theorem 6 framework
// on a heterogeneous-budget instance. No approximation guarantee is claimed
// (the general variant is open); the schedule is validated and the result
// reports the certified lower bound for ratio measurement.
func SolveHetSlots(in *HetSlotsInstance) (*hetslots.Result, error) {
	return hetslots.Solve(in)
}
