package ccsched

// FuzzSessionSnapshot fuzzes the durable-session codec with arbitrary bytes.
// The properties: RestoreSession never panics; when it accepts a document,
// the restored session re-encodes to a snapshot that itself restores and is
// a byte-exact fixed point under one more decode/encode round (i.e. the
// restore never keeps partially-valid state that the encoder can't
// reproduce — anything invalid was dropped, so what remains round-trips
// exactly).

import (
	"bytes"
	"context"
	"testing"
)

// fuzzSnapshotCorpus builds real snapshots (warm, cold, cacheless) to seed
// the fuzzer with documents deep in the accept path.
func fuzzSnapshotCorpus(f *testing.F) [][]byte {
	f.Helper()
	var corpus [][]byte
	for _, cfg := range []struct {
		opts  Options
		solve int
	}{
		{Options{Variant: Splittable, Tier: TierPTAS, Epsilon: 1}, 2},
		{Options{Variant: NonPreemptive, Tier: TierPTAS, Epsilon: 1}, 1},
		{Options{Variant: Preemptive, Tier: TierPTAS, Epsilon: 1, NoCache: true}, 1},
		{Options{Variant: Splittable, Tier: TierApprox}, 0},
	} {
		in, err := Generate("uniform", GeneratorConfig{
			N: 24, Classes: 4, Machines: 3, Slots: 2, PMax: 100, Seed: 5,
		})
		if err != nil {
			f.Fatal(err)
		}
		sess, err := NewSession(in, cfg.opts)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < cfg.solve; i++ {
			if _, err := sess.Solve(context.Background()); err != nil {
				f.Fatal(err)
			}
			ids := sess.JobIDs()
			if err := sess.Resize(ids[i%len(ids)], int64(37+11*i)); err != nil {
				f.Fatal(err)
			}
		}
		data, err := sess.SnapshotState()
		if err != nil {
			f.Fatal(err)
		}
		corpus = append(corpus, data)
	}
	return corpus
}

// FuzzSessionSnapshot is the snapshot-codec round-trip fuzzer: arbitrary
// bytes must never panic RestoreSession, and every accepted document must
// re-encode to a fixed point that restores again.
func FuzzSessionSnapshot(f *testing.F) {
	for _, seed := range fuzzSnapshotCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err := RestoreSession(data)
		if err != nil {
			return // refused: the only other acceptable outcome
		}
		data1, err := s1.SnapshotState()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		s2, err := RestoreSession(data1)
		if err != nil {
			t.Fatalf("re-encoded snapshot refused: %v\n%s", err, data1)
		}
		data2, err := s2.SnapshotState()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(data1, data2) {
			t.Fatalf("snapshot re-encode is not a fixed point:\n%s\nvs\n%s", data1, data2)
		}
	})
}
