module ccsched

go 1.24
