package ccsched

import (
	"context"
	"fmt"
	"sync"

	"ccsched/internal/ptas"
)

// A Session is a live scheduling instance that accepts deltas — jobs
// arriving, finishing and changing size, machines joining and leaving — and
// re-solves incrementally: each Solve reuses everything the previous solve
// learned (the guess templates with their move-set caches, the accepted
// makespan guess as the next search's seed, the boundary reject's
// infeasibility certificate, the root-basis hint, and a session-keyed
// feasibility cache). All reuse is verdict-preserving, so a session
// re-solve returns a makespan bit-identical to a cold Solve of the mutated
// instance — only faster; the session differential tests prove the
// equivalence across random delta streams on every generator family.
//
// Jobs are addressed by stable ids (int64) minted by NewSession and
// AddJobs, so removals never invalidate handles. Schedules in a session's
// Result index jobs by their current position; JobIDs returns the parallel
// id slice for translating positions back to handles.
//
// A Session is safe for concurrent use; deltas and solves serialize on an
// internal mutex (the warm state belongs to one solve at a time). Deltas
// only mutate the instance — the next Solve picks them all up at once.
type Session struct {
	mu     sync.Mutex
	in     *Instance
	ids    []int64
	nextID int64
	opts   Options
	state  *ptas.SessionState
	// gen counts instance mutations; last/lastGen implement the no-delta
	// fast path (last is current iff lastGen == gen) and let SolveSnapshot
	// decide whether a result computed from an older snapshot may be
	// installed as current.
	gen      uint64
	last     *Result
	lastGen  uint64
	resolves int64
}

// NewSession starts a session on a copy of in (later deltas never touch the
// caller's instance). Unless opts names a cache explicitly, the session gets
// its own feasibility cache, so its guess verdicts stay hot under the
// session and are evicted with it. The initial solve happens on the first
// Solve call.
func NewSession(in *Instance, opts Options) (*Session, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	switch opts.Variant {
	case Splittable, Preemptive, NonPreemptive:
	default:
		return nil, fmt.Errorf("ccsched: unknown variant %v", opts.Variant)
	}
	if opts.Cache == nil && !opts.NoCache {
		opts.Cache = NewFeasibilityCache()
	}
	s := &Session{
		in:    in.Clone(),
		opts:  opts,
		state: ptas.NewSessionState(),
		gen:   1,
	}
	s.ids = make([]int64, in.N())
	for i := range s.ids {
		s.nextID++
		s.ids[i] = s.nextID
	}
	return s, nil
}

// Instance returns a deep copy of the session's current instance, with jobs
// in the session's current order (parallel to JobIDs).
func (s *Session) Instance() *Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in.Clone()
}

// JobIDs returns the stable id of every current job, parallel to the
// session instance's job order.
func (s *Session) JobIDs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.ids...)
}

// Resolves reports how many solves the session has actually run (returns of
// an unchanged cached result not included).
func (s *Session) Resolves() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolves
}

// Generation returns the session's mutation counter: it increases with
// every applied delta, so a caller that remembers the value from its last
// checkpoint can tell cheaply whether the session is dirty.
func (s *Session) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Options returns the session's solve options. The feasibility cache is not
// part of the answer (it is session-private state, never shared by handle).
func (s *Session) Options() Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	opts := s.opts
	opts.Cache = nil
	return opts
}

// AddJobs appends jobs (processing time p[i], class class[i]) and returns
// their stable ids. The delta takes effect at the next Solve.
func (s *Session) AddJobs(p []int64, class []int) ([]int64, error) {
	if len(p) != len(class) {
		return nil, fmt.Errorf("ccsched: %d processing times but %d classes", len(p), len(class))
	}
	for i := range p {
		if p[i] <= 0 {
			return nil, fmt.Errorf("ccsched: job %d has non-positive processing time %d", i, p[i])
		}
		if class[i] < 0 {
			return nil, fmt.Errorf("ccsched: job %d has negative class %d", i, class[i])
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(p))
	for i := range p {
		s.in.P = append(s.in.P, p[i])
		s.in.Class = append(s.in.Class, class[i])
		s.nextID++
		s.ids = append(s.ids, s.nextID)
		out[i] = s.nextID
	}
	s.gen++
	return out, nil
}

// RemoveJobs deletes the jobs with the given ids, preserving the order of
// the rest. Unknown ids fail the whole call without applying anything.
func (s *Session) RemoveJobs(ids ...int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	drop := make(map[int64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	found := 0
	for _, id := range s.ids {
		if drop[id] {
			found++
		}
	}
	if found != len(drop) {
		return fmt.Errorf("ccsched: RemoveJobs: %d of %d ids unknown", len(drop)-found, len(drop))
	}
	w := 0
	for r, id := range s.ids {
		if drop[id] {
			continue
		}
		s.ids[w] = id
		s.in.P[w] = s.in.P[r]
		s.in.Class[w] = s.in.Class[r]
		w++
	}
	s.ids = s.ids[:w]
	s.in.P = s.in.P[:w]
	s.in.Class = s.in.Class[:w]
	s.gen++
	return nil
}

// Resize changes the processing time of one job.
func (s *Session) Resize(id, p int64) error {
	if p <= 0 {
		return fmt.Errorf("ccsched: Resize: non-positive processing time %d", p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, jid := range s.ids {
		if jid == id {
			s.in.P[i] = p
			s.gen++
			return nil
		}
	}
	return fmt.Errorf("ccsched: Resize: unknown job id %d", id)
}

// SetMachines changes the machine count.
func (s *Session) SetMachines(m int64) error {
	if m < 1 {
		return fmt.Errorf("ccsched: SetMachines: need at least one machine, got %d", m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in.M = m
	s.gen++
	return nil
}

// SetSlots changes the per-machine class-slot budget. Changing it
// invalidates the carried guess templates (brick shapes change), which the
// next Solve rebuilds transparently.
func (s *Session) SetSlots(c int) error {
	if c < 1 {
		return fmt.Errorf("ccsched: SetSlots: need at least one class slot, got %d", c)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in.Slots = c
	s.gen++
	return nil
}

// Solve re-solves the session's current instance, reusing the warm state of
// earlier solves, and returns the result (jobs indexed in the session's
// current order; see JobIDs). When nothing changed since the last solve the
// cached result is returned as is. The returned Result is shared — treat it
// as immutable. Cancellation and deadlines propagate exactly as in Solve;
// a canceled solve leaves the session consistent and still dirty, so the
// next Solve retries.
func (s *Session) Solve(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last != nil && s.lastGen == s.gen {
		return s.last, nil
	}
	res, err := solveWith(ctx, s.in, s.opts, s.state)
	if err != nil {
		return nil, err
	}
	s.last, s.lastGen = res, s.gen
	s.resolves++
	return res, nil
}

// Snapshot returns a deep copy of the current instance, the matching job
// ids, and the session's generation counter. Pass all three to
// SolveSnapshot to solve exactly this state even if deltas land in
// between (the pattern the HTTP session pipeline uses for queued
// re-solves).
func (s *Session) Snapshot() (*Instance, []int64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in.Clone(), append([]int64(nil), s.ids...), s.gen
}

// SolveSnapshot solves a Snapshot-returned instance with the session's
// warm state. The result is installed as the session's current result only
// when gen still matches the session's generation — a solve of an outdated
// snapshot returns its (snapshot-consistent) result without clobbering the
// newer state, so callers that keyed work off the snapshot always receive
// the result matching their key.
func (s *Session) SolveSnapshot(ctx context.Context, in *Instance, gen uint64) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last != nil && s.lastGen == gen && gen == s.gen {
		return s.last, nil
	}
	res, err := solveWith(ctx, in, s.opts, s.state)
	if err != nil {
		return nil, err
	}
	if gen == s.gen {
		s.last, s.lastGen = res, gen
	}
	s.resolves++
	return res, nil
}
