// Command ccload drives a running ccserved with concurrent clients and
// records throughput, latency percentiles and the server's coalescing and
// cache counters into a JSON report (BENCH_PR3.json in this repo's
// experiments).
//
// A -dup fraction of the requests are duplicates of earlier instances with
// their job lists shuffled — the canonical form is identical, so the server
// must answer them by singleflight coalescing (duplicate placed right after
// its original in the deck, likely still in flight) or from the result
// cache (duplicate placed at the tail, after its original finished).
//
// Usage:
//
//	ccload -url http://localhost:8080 -clients 64 -requests 256 -dup 0.5 \
//	       -family uniform -n 200 -variant splittable -tier approx -out BENCH_PR3.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccsched"
	"ccsched/internal/server"
)

// report is the JSON document ccload writes.
type report struct {
	Label      string         `json:"label,omitempty"`
	Config     runConfig      `json:"config"`
	WallS      float64        `json:"wall_s"`
	Throughput float64        `json:"throughput_rps"`
	Totals     totals         `json:"totals"`
	LatencyMs  latencySummary `json:"latency_ms"`
	Server     serverDeltas   `json:"server_deltas"`
}

// runConfig echoes the generator and client parameters of the run.
type runConfig struct {
	URL       string  `json:"url"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	DupFrac   float64 `json:"dup_fraction"`
	Family    string  `json:"family"`
	N         int     `json:"n"`
	Classes   int     `json:"classes"`
	Machines  int64   `json:"machines"`
	Slots     int     `json:"slots"`
	PMax      int64   `json:"pmax"`
	Seed      int64   `json:"seed"`
	Variant   string  `json:"variant"`
	Tier      string  `json:"tier"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	TimeoutMs int64   `json:"timeout_ms,omitempty"`
}

// totals counts request outcomes.
type totals struct {
	OK        int64         `json:"ok"`
	Coalesced int64         `json:"coalesced"`
	Cached    int64         `json:"cached"`
	Dropped   int64         `json:"dropped_429"`
	Errors    int64         `json:"errors"`
	ByStatus  map[int]int64 `json:"by_status"`
}

// latencySummary holds client-observed latency percentiles over the
// successful requests (drops and errors return fast and would skew them).
type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// serverDeltas is the change in the server's counters across the run.
type serverDeltas struct {
	Admitted              int64 `json:"admitted"`
	Solves                int64 `json:"solves"`
	CoalescedHits         int64 `json:"coalesced_hits"`
	ResultCacheHits       int64 `json:"result_cache_hits"`
	RejectedQueueFull     int64 `json:"rejected_queue_full"`
	SolveErrors           int64 `json:"solve_errors"`
	FeasibilityCacheHits  int64 `json:"feasibility_cache_hits"`
	FeasibilityCacheMiss  int64 `json:"feasibility_cache_misses"`
	ResultCacheEntriesNow int   `json:"result_cache_entries_now"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ccload:", err)
	os.Exit(1)
}

// fetchMetrics reads the server's /metrics snapshot.
func fetchMetrics(url string) (server.MetricsSnapshot, error) {
	var m server.MetricsSnapshot
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// shuffled returns a job-order permutation of in; the canonical form (and
// thus the server's dedup key) is unchanged.
func shuffled(in *ccsched.Instance, rng *rand.Rand) *ccsched.Instance {
	out := &ccsched.Instance{M: in.M, Slots: in.Slots}
	for _, j := range rng.Perm(in.N()) {
		out.P = append(out.P, in.P[j])
		out.Class = append(out.Class, in.Class[j])
	}
	return out
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "ccserved base URL")
		clients   = flag.Int("clients", 64, "concurrent clients")
		requests  = flag.Int("requests", 256, "total requests")
		dup       = flag.Float64("dup", 0.5, "fraction of requests that duplicate an earlier instance")
		family    = flag.String("family", "uniform", "workload family")
		n         = flag.Int("n", 200, "jobs per instance")
		classes   = flag.Int("classes", 20, "classes per instance")
		m         = flag.Int64("m", 8, "machines")
		slots     = flag.Int("slots", 3, "class slots per machine")
		pmax      = flag.Int64("pmax", 100, "maximum processing time")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		variant   = flag.String("variant", "splittable", "splittable | preemptive | nonpreemptive")
		tier      = flag.String("tier", "approx", "auto | approx | ptas | exact")
		eps       = flag.Float64("eps", 0.5, "PTAS accuracy ε")
		timeoutMs = flag.Int64("timeout-ms", 0, "per-request solve deadline (0 = server default)")
		wait      = flag.Duration("wait", 5*time.Minute, "client-side wait per request")
		out       = flag.String("out", "", "write the JSON report here (default stdout)")
		label     = flag.String("label", "", "free-form label recorded in the report")
	)
	flag.Parse()
	v, err := ccsched.ParseVariant(*variant)
	if err != nil {
		fail(err)
	}
	tr, err := ccsched.ParseTier(*tier)
	if err != nil {
		fail(err)
	}
	opts := ccsched.Options{Variant: v, Tier: tr}
	if tr == ccsched.TierPTAS || tr == ccsched.TierAuto {
		opts.Epsilon = *eps
	}

	// Build the request deck: originals, with half the duplicates placed
	// right after their original (coalescing pressure: both are in flight
	// together) and half at the tail (result-cache pressure: the original
	// finished long ago).
	nDup := int(float64(*requests) * *dup)
	nUnique := *requests - nDup
	if nUnique < 1 {
		fail(fmt.Errorf("dup fraction %v leaves no unique instances", *dup))
	}
	rng := rand.New(rand.NewSource(*seed * 7919))
	uniques := make([]*ccsched.Instance, nUnique)
	for i := range uniques {
		uniques[i], err = ccsched.Generate(*family, ccsched.GeneratorConfig{
			N: *n, Classes: *classes, Machines: *m, Slots: *slots, PMax: *pmax, Seed: *seed + int64(i),
		})
		if err != nil {
			fail(err)
		}
	}
	var deck []*ccsched.Instance
	adjacent := nDup / 2
	for i, u := range uniques {
		deck = append(deck, u)
		if i < adjacent {
			deck = append(deck, shuffled(u, rng))
		}
	}
	for i := 0; i < nDup-adjacent; i++ {
		deck = append(deck, shuffled(uniques[i%nUnique], rng))
	}

	// Fire the deck with -clients concurrent workers pulling off a shared
	// cursor, so adjacent deck entries run concurrently.
	var (
		cursor    atomic.Int64
		tot       totals
		statusMu  sync.Mutex
		latencies = make([]time.Duration, len(deck))
		succeeded = make([]bool, len(deck))
	)
	tot.ByStatus = make(map[int]int64)
	before, err := fetchMetrics(*url)
	if err != nil {
		fail(fmt.Errorf("reading initial metrics (is ccserved running?): %w", err))
	}
	client := &http.Client{Timeout: *wait}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(deck) {
					return
				}
				body, err := json.Marshal(server.SolveRequest{Instance: deck[i], Options: opts, TimeoutMs: *timeoutMs})
				if err != nil {
					fail(err)
				}
				reqStart := time.Now()
				resp, err := client.Post(*url+"/v1/solve?wait="+wait.String(), "application/json", bytes.NewReader(body))
				latencies[i] = time.Since(reqStart)
				if err != nil {
					atomic.AddInt64(&tot.Errors, 1)
					continue
				}
				var sr server.SolveResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				statusMu.Lock()
				tot.ByStatus[resp.StatusCode]++
				statusMu.Unlock()
				switch {
				case decErr != nil || resp.StatusCode != http.StatusOK || sr.Result == nil:
					if resp.StatusCode == http.StatusTooManyRequests {
						atomic.AddInt64(&tot.Dropped, 1)
					} else {
						atomic.AddInt64(&tot.Errors, 1)
					}
				default:
					atomic.AddInt64(&tot.OK, 1)
					succeeded[i] = true
					if sr.Coalesced {
						atomic.AddInt64(&tot.Coalesced, 1)
					}
					if sr.Cached {
						atomic.AddInt64(&tot.Cached, 1)
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	after, err := fetchMetrics(*url)
	if err != nil {
		fail(err)
	}

	// Percentiles cover successful requests only — a 429 returning in a
	// millisecond would otherwise drag the reported latencies down.
	var sorted []time.Duration
	for i, d := range latencies {
		if succeeded[i] {
			sorted = append(sorted, d)
		}
	}
	if len(sorted) == 0 {
		fail(fmt.Errorf("no request succeeded (server deltas: coalesced=%d cached=%d rejected=%d)",
			after.CoalescedHitsTotal-before.CoalescedHitsTotal,
			after.ResultCacheHitsTotal-before.ResultCacheHitsTotal,
			after.RejectedQueueFullTotal-before.RejectedQueueFullTotal))
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}

	rep := report{
		Label: *label,
		Config: runConfig{
			URL: *url, Clients: *clients, Requests: len(deck), DupFrac: *dup,
			Family: *family, N: *n, Classes: *classes, Machines: *m, Slots: *slots,
			PMax: *pmax, Seed: *seed, Variant: v.String(), Tier: tr.String(),
			Epsilon: opts.Epsilon, TimeoutMs: *timeoutMs,
		},
		WallS:      wall.Seconds(),
		Throughput: float64(len(deck)) / wall.Seconds(),
		Totals:     tot,
		LatencyMs: latencySummary{
			P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
			Max:  float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
			Mean: float64(sum) / float64(len(sorted)) / float64(time.Millisecond),
		},
		Server: serverDeltas{
			Admitted:              after.AdmittedTotal - before.AdmittedTotal,
			Solves:                after.SolvesTotal - before.SolvesTotal,
			CoalescedHits:         after.CoalescedHitsTotal - before.CoalescedHitsTotal,
			ResultCacheHits:       after.ResultCacheHitsTotal - before.ResultCacheHitsTotal,
			RejectedQueueFull:     after.RejectedQueueFullTotal - before.RejectedQueueFullTotal,
			SolveErrors:           after.SolveErrorsTotal - before.SolveErrorsTotal,
			FeasibilityCacheHits:  after.FeasibilityCache.Hits - before.FeasibilityCache.Hits,
			FeasibilityCacheMiss:  after.FeasibilityCache.Misses - before.FeasibilityCache.Misses,
			ResultCacheEntriesNow: after.ResultCacheEntries,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("ccload: %d requests in %.2fs (%.1f rps): %d ok, %d coalesced, %d cached, %d dropped, %d errors → %s\n",
		len(deck), wall.Seconds(), rep.Throughput, tot.OK, tot.Coalesced, tot.Cached, tot.Dropped, tot.Errors, *out)
}
