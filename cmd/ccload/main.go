// Command ccload drives a running ccserved with concurrent clients and
// records throughput, latency percentiles and the server's coalescing and
// cache counters into a JSON report (BENCH_PR3.json in this repo's
// experiments).
//
// A -dup fraction of the requests are duplicates of earlier instances with
// their job lists shuffled — the canonical form is identical, so the server
// must answer them by singleflight coalescing (duplicate placed right after
// its original in the deck, likely still in flight) or from the result
// cache (duplicate placed at the tail, after its original finished).
//
// With -churn > 0 ccload instead exercises the incremental session API:
// it creates one /v1/sessions session and, for -rounds rounds, mutates a
// -churn fraction of the jobs (resizes of up to ±-churn-resize-pct percent)
// with PATCH and records the per-round re-solve latencies plus the server's
// session counters, which ccserved labels separately from one-shot solves.
// -verify additionally re-solves every round's instance cold in-process and
// fails unless the session makespans are bit-identical.
//
// With -watch ccload exercises the anytime tier: it creates one TierAnytime
// session (instant 2-approx answer), consumes the GET /v1/sessions/{id}/watch
// SSE stream to the terminal rung, and fails unless the stream carries at
// least two events with strictly increasing generations and monotone
// non-increasing optimality gaps. The report records time-to-first-answer and
// time-to-gap≤10% — the anytime tier's two serving latencies. -verify
// additionally solves the instance cold at the terminal ε in-process and
// requires the final streamed makespan to be bit-identical.
//
// Either mode ends by printing the run's queue-wait p50/p99 to stderr,
// read off the server's queue_wait_latency histogram deltas — the early
// saturation signal: queue wait grows before solve latency does when the
// worker pool is undersized.
//
// -retries N retries session-mode requests (and /metrics reads) up to N
// times on 429, 503 and transport errors with exponential backoff plus
// jitter — the knob that lets a churn run ride out a server restart. The
// classic deck mode never retries: its 429s are the measurement.
//
// With -kill9 (session mode, requires -server-cmd so ccload owns the server
// process) the run becomes a crash-recovery proof: at -kill9-round the
// server is killed with SIGKILL mid-churn, restarted, and the session must
// come back from its snapshot — ccload re-syncs the instance with one
// repair PATCH and fails unless the re-solve's makespan is bit-identical to
// the pre-kill round and answered warm from the restored cache
// (report.cache_hits > 0, snapshot_restores_total >= 1).
//
// Usage:
//
//	ccload -url http://localhost:8080 -clients 64 -requests 256 -dup 0.5 \
//	       -family uniform -n 200 -variant splittable -tier approx -out BENCH_PR3.json
//	ccload -url http://localhost:8080 -churn 0.05 -rounds 20 \
//	       -family uniform -n 1000 -tier ptas -eps 1 -verify -out churn.json
//	ccload -url http://localhost:8081 -churn 0.05 -rounds 10 -verify -retries 8 \
//	       -kill9 -server-cmd "./ccserved -addr :8081 -state-dir /tmp/ccstate -checkpoint 200ms"
//	ccload -url http://localhost:8080 -watch -family uniform -n 1000 -eps 0.5 \
//	       -verify -out watch.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ccsched"
	"ccsched/internal/server"
)

// report is the JSON document ccload writes.
type report struct {
	Label      string         `json:"label,omitempty"`
	Config     runConfig      `json:"config"`
	WallS      float64        `json:"wall_s"`
	Throughput float64        `json:"throughput_rps"`
	Totals     totals         `json:"totals"`
	LatencyMs  latencySummary `json:"latency_ms"`
	Server     serverDeltas   `json:"server_deltas"`
	// Session is populated by -churn runs only.
	Session *sessionReport `json:"session,omitempty"`
	// Watch is populated by -watch runs only.
	Watch *watchReport `json:"watch,omitempty"`
}

// watchReport summarizes a -watch run: the anytime tier's serving latencies
// and the refinement stream's shape.
type watchReport struct {
	// Events is the number of SSE events to the terminal rung (first answer
	// included); the contract guarantees at least two.
	Events int `json:"events"`
	// FirstAnswerMs is the create's inline 2-approx latency — the anytime
	// tier's time-to-first-answer.
	FirstAnswerMs float64 `json:"first_answer_ms"`
	// FirstGap and FinalGap bracket the stream's certified optimality gaps.
	FirstGap float64 `json:"first_gap"`
	FinalGap float64 `json:"final_gap"`
	// TimeToGap10Ms is when the first event with gap <= 10% arrived, counted
	// from the create (0 when the stream never got there).
	TimeToGap10Ms float64 `json:"time_to_gap10_ms,omitempty"`
	// FinalMs is when the terminal rung arrived, counted from the create.
	FinalMs float64 `json:"final_ms"`
	// MonotoneGap reports every event's gap was <= its predecessor's.
	MonotoneGap bool `json:"monotone_gap"`
	// RefinementRungs is the server's refinement_rungs_total delta.
	RefinementRungs int64 `json:"refinement_rungs"`
	// Verified reports the -verify cold solve matched bit-identically.
	Verified bool `json:"verified_bit_identical,omitempty"`
}

// sessionReport summarizes a -churn run: per-round PATCH latencies and the
// session-labeled server counters, so incremental re-solves are
// attributable separately from one-shot solves.
type sessionReport struct {
	Rounds          int            `json:"rounds"`
	ChurnFraction   float64        `json:"churn_fraction"`
	ResizePct       float64        `json:"resize_pct"`
	RoundLatencyMs  latencySummary `json:"round_latency_ms"`
	SolveMsMean     float64        `json:"solve_ms_mean"`
	SessionResolves int64          `json:"session_resolves"`
	SessionSolveMs  float64        `json:"session_solve_ms_total"`
	CacheHits       int64          `json:"result_cache_hits"`
	Verified        bool           `json:"verified_bit_identical,omitempty"`
	// Kill9/KillRound record that the run killed and restarted the server
	// mid-churn; RestoredWarm reports the post-restart re-solve answered its
	// probes from the restored cache, and SnapshotRestores is the restarted
	// server's snapshot_restores_total.
	Kill9            bool  `json:"kill9,omitempty"`
	KillRound        int   `json:"kill_round,omitempty"`
	RestoredWarm     bool  `json:"restored_warm,omitempty"`
	SnapshotRestores int64 `json:"snapshot_restores,omitempty"`
}

// runConfig echoes the generator and client parameters of the run.
type runConfig struct {
	URL       string  `json:"url"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	DupFrac   float64 `json:"dup_fraction"`
	Family    string  `json:"family"`
	N         int     `json:"n"`
	Classes   int     `json:"classes"`
	Machines  int64   `json:"machines"`
	Slots     int     `json:"slots"`
	PMax      int64   `json:"pmax"`
	Seed      int64   `json:"seed"`
	Variant   string  `json:"variant"`
	Tier      string  `json:"tier"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	TimeoutMs int64   `json:"timeout_ms,omitempty"`
}

// totals counts request outcomes.
type totals struct {
	OK        int64         `json:"ok"`
	Coalesced int64         `json:"coalesced"`
	Cached    int64         `json:"cached"`
	Dropped   int64         `json:"dropped_429"`
	Errors    int64         `json:"errors"`
	ByStatus  map[int]int64 `json:"by_status"`
}

// latencySummary holds client-observed latency percentiles over the
// successful requests (drops and errors return fast and would skew them).
type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// serverDeltas is the change in the server's counters across the run.
type serverDeltas struct {
	Admitted              int64 `json:"admitted"`
	Solves                int64 `json:"solves"`
	CoalescedHits         int64 `json:"coalesced_hits"`
	ResultCacheHits       int64 `json:"result_cache_hits"`
	RejectedQueueFull     int64 `json:"rejected_queue_full"`
	SolveErrors           int64 `json:"solve_errors"`
	FeasibilityCacheHits  int64 `json:"feasibility_cache_hits"`
	FeasibilityCacheMiss  int64 `json:"feasibility_cache_misses"`
	ResultCacheEntriesNow int   `json:"result_cache_entries_now"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ccload:", err)
	os.Exit(1)
}

// churnConfig parameterizes one -churn session run.
type churnConfig struct {
	url               string
	family            string
	n, classes, slots int
	m                 int64
	pmax, seed        int64
	opts              ccsched.Options
	churn, resizePct  float64
	rounds            int
	verify            bool
	timeoutMs         int64
	wait              time.Duration
	out, label        string
	cfg               runConfig
	retries           int
	kill9             bool
	serverCmd         string
	kill9Round        int
	kill9Wait         time.Duration
}

// backoff returns the sleep before retry attempt (0-based): 50ms doubling
// per attempt, capped at 2s, plus up to 50% jitter so retriers desynchronize.
func backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(attempt)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d + time.Duration(rand.Int63n(int64(d/2)+1))
}

// doWithRetry performs one HTTP call with up to retries retries on 429, 503
// and transport errors (connection refused during a server restart looks
// like the latter). mk builds a fresh request per attempt — bodies cannot be
// replayed from a consumed reader. The final attempt's response or error is
// returned as is. A Retry-After header on a rejection is honored in place of
// the exponential backoff — the server knows its own drain cadence better
// than a generic doubling does — capped so a confused server cannot stall
// the load generator for minutes.
func doWithRetry(client *http.Client, retries int, mk func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if attempt >= retries {
			return resp, err
		}
		sleep := backoff(attempt)
		if err == nil {
			if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
				return resp, nil
			}
			if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
				sleep = d
			}
			resp.Body.Close()
		}
		time.Sleep(sleep)
	}
}

// maxRetryAfter caps how long a server-suggested Retry-After can hold one
// retry attempt.
const maxRetryAfter = 10 * time.Second

// parseRetryAfter reads a Retry-After header in delay-seconds form (the form
// ccserved sends; HTTP-date is not worth parsing here), capped at
// maxRetryAfter.
func parseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.ParseInt(h, 10, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d, true
}

// sessionRequest performs one /v1/sessions call (with up to retries retries
// on 429/503/transport errors) and decodes the response.
func sessionRequest(client *http.Client, retries int, method, url string, body any) (*server.SessionResponse, error) {
	var encoded []byte
	if body != nil {
		var err error
		if encoded, err = json.Marshal(body); err != nil {
			return nil, err
		}
	}
	resp, err := doWithRetry(client, retries, func() (*http.Request, error) {
		return http.NewRequest(method, url, bytes.NewReader(encoded))
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sr server.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("%s %s: %w", method, url, err)
	}
	if resp.StatusCode != http.StatusOK || sr.Status != server.StatusDone {
		return &sr, fmt.Errorf("%s %s: status %d (%s): %s", method, url, resp.StatusCode, sr.Status, sr.Error)
	}
	return &sr, nil
}

// runChurn drives the incremental session API: one session, c.rounds PATCH
// rounds each mutating c.churn of the jobs, per-round latency and the
// session-labeled server counters recorded. With c.verify every round's
// makespan is checked bit-identical against an in-process cold solve.
func runChurn(c churnConfig) {
	if c.rounds < 1 {
		fail(fmt.Errorf("-churn mode needs -rounds >= 1, got %d", c.rounds))
	}
	if c.kill9 {
		if c.serverCmd == "" {
			fail(fmt.Errorf("-kill9 needs -server-cmd (ccload must own the server process to SIGKILL it)"))
		}
		if c.kill9Round <= 0 {
			c.kill9Round = c.rounds / 2
		}
		if c.kill9Round < 1 || c.kill9Round > c.rounds {
			fail(fmt.Errorf("-kill9-round %d outside [1,%d]", c.kill9Round, c.rounds))
		}
	}
	in, err := ccsched.Generate(c.family, ccsched.GeneratorConfig{
		N: c.n, Classes: c.classes, Machines: c.m, Slots: c.slots, PMax: c.pmax, Seed: c.seed,
	})
	if err != nil {
		fail(err)
	}
	var srv *exec.Cmd
	if c.serverCmd != "" {
		if srv, err = startServerCmd(c.serverCmd); err != nil {
			fail(err)
		}
		defer func() {
			if srv != nil && srv.Process != nil {
				srv.Process.Signal(syscall.SIGTERM)
				srv.Wait()
			}
		}()
		if err := waitHealthy(c.url, 30*time.Second); err != nil {
			fail(err)
		}
	}
	client := &http.Client{Timeout: c.wait}
	before, err := fetchMetrics(c.url, c.retries)
	if err != nil {
		fail(fmt.Errorf("reading initial metrics (is ccserved running?): %w", err))
	}
	start := time.Now()
	sr, err := sessionRequest(client, c.retries, "POST", c.url+"/v1/sessions?wait="+c.wait.String(), server.SessionCreateRequest{
		Instance: in, Options: c.opts, TimeoutMs: c.timeoutMs,
	})
	if err != nil {
		fail(err)
	}
	sid := sr.SessionID
	mirror := in.Clone()
	ids := sr.JobIDs

	rng := rand.New(rand.NewSource(c.seed*7717 + 5))
	latencies := make([]time.Duration, 0, c.rounds)
	var solveMsSum float64
	verified := true
	var tot totals
	tot.ByStatus = map[int]int64{http.StatusOK: 1}
	// Cross-restart metric accounting: counters reset with the process, so a
	// kill splits the run into two windows and the final deltas are
	// (preKill - before) + (after - postBoot).
	var preKill, postBoot server.MetricsSnapshot
	killed := false
	restoredWarm := false
	var snapRestores int64
	for round := 1; round <= c.rounds; round++ {
		// Mutate churn·n jobs: resize by up to ±resizePct of the current
		// size (the steady-state "jobs re-estimate" trickle).
		k := int(c.churn * float64(len(ids)))
		if k < 1 {
			k = 1
		}
		delta := server.SessionDelta{TimeoutMs: c.timeoutMs}
		for j := 0; j < k; j++ {
			pos := rng.Intn(len(ids))
			cur := mirror.P[pos]
			span := int64(float64(cur) * c.resizePct / 100)
			next := cur + rng.Int63n(2*span+1) - span
			if next < 1 {
				next = 1
			}
			mirror.P[pos] = next
			delta.Resize = append(delta.Resize, server.SessionResize{ID: ids[pos], P: next})
		}
		reqStart := time.Now()
		pr, err := sessionRequest(client, c.retries, "PATCH", c.url+"/v1/sessions/"+sid+"?wait="+c.wait.String(), delta)
		latencies = append(latencies, time.Since(reqStart))
		if err != nil {
			fail(fmt.Errorf("round %d: %w", round, err))
		}
		tot.OK++
		tot.ByStatus[http.StatusOK]++
		if pr.Coalesced {
			tot.Coalesced++
		}
		if pr.Cached {
			tot.Cached++
		}
		solveMsSum += pr.SolveMs
		ids = pr.JobIDs
		if c.verify {
			coldOpts := c.opts
			coldOpts.Cache = ccsched.NewFeasibilityCache()
			want, err := ccsched.Solve(context.Background(), mirror, coldOpts)
			if err != nil {
				fail(fmt.Errorf("round %d: cold verify solve: %w", round, err))
			}
			if pr.Result == nil || pr.Result.Makespan.Cmp(want.Makespan) != 0 {
				verified = false
				fail(fmt.Errorf("round %d: session makespan %v != cold %s — parity broken",
					round, pr.Result.Makespan, want.Makespan.RatString()))
			}
		}
		if c.kill9 && round == c.kill9Round {
			if pr.Result == nil {
				fail(fmt.Errorf("round %d: no result to verify the crash recovery against", round))
			}
			preMakespan := pr.Result.Makespan
			// Give the background checkpointer one interval to persist the
			// round's warm state before the crash.
			time.Sleep(c.kill9Wait)
			// Export as a fallback: if the restarted server did not restore
			// the session from disk, the snapshot is PUT back — the same
			// live-migration path, pointed at the "new" server.
			snap, expErr := exportSession(client, c.url, sid, c.retries)
			if preKill, err = fetchMetrics(c.url, c.retries); err != nil {
				fail(fmt.Errorf("round %d: pre-kill metrics: %w", round, err))
			}
			fmt.Fprintf(os.Stderr, "ccload: round %d: SIGKILL to server pid %d\n", round, srv.Process.Pid)
			if err := srv.Process.Kill(); err != nil {
				fail(fmt.Errorf("round %d: kill: %w", round, err))
			}
			srv.Wait()
			if srv, err = startServerCmd(c.serverCmd); err != nil {
				fail(fmt.Errorf("round %d: restart: %w", round, err))
			}
			if err := waitHealthy(c.url, 30*time.Second); err != nil {
				fail(fmt.Errorf("round %d: restarted %w", round, err))
			}
			if postBoot, err = fetchMetrics(c.url, c.retries); err != nil {
				fail(fmt.Errorf("round %d: post-boot metrics: %w", round, err))
			}
			// Did the session survive on disk? If not, put the export back.
			if _, err := sessionRequest(client, c.retries, "GET", c.url+"/v1/sessions/"+sid+"?wait="+c.wait.String(), nil); err != nil {
				if expErr != nil {
					fail(fmt.Errorf("round %d: session lost and export failed too: %v / %v", round, err, expErr))
				}
				if err := importSession(client, c.url, sid, snap, c.retries); err != nil {
					fail(fmt.Errorf("round %d: session lost and import failed: %w", round, err))
				}
				fmt.Fprintf(os.Stderr, "ccload: round %d: session re-imported from export\n", round)
			}
			// Repair PATCH: resize every job to its mirror value. The restored
			// checkpoint may predate the last deltas; absolute resizes make
			// the server instance bit-identical to the mirror regardless, and
			// the re-solve must then reproduce the pre-kill makespan from the
			// restored warm state.
			repair := server.SessionDelta{TimeoutMs: c.timeoutMs}
			for pos := range ids {
				repair.Resize = append(repair.Resize, server.SessionResize{ID: ids[pos], P: mirror.P[pos]})
			}
			rr, err := sessionRequest(client, c.retries, "PATCH", c.url+"/v1/sessions/"+sid+"?wait="+c.wait.String(), repair)
			if err != nil {
				fail(fmt.Errorf("round %d: repair re-solve: %w", round, err))
			}
			if rr.Result == nil || rr.Result.Makespan.Cmp(preMakespan) != 0 {
				fail(fmt.Errorf("round %d: post-restart makespan %v != pre-kill %s — recovery broke the verdict",
					round, rr.Result, preMakespan.RatString()))
			}
			restoredWarm = rr.Result.Report.CacheHits > 0
			if !restoredWarm {
				fail(fmt.Errorf("round %d: post-restart re-solve ran fully cold (report %+v) — warm state not restored",
					round, rr.Result.Report))
			}
			m, err := fetchMetrics(c.url, c.retries)
			if err != nil {
				fail(err)
			}
			snapRestores = m.SnapshotRestoresTotal
			if snapRestores < 1 {
				fail(fmt.Errorf("round %d: snapshot_restores_total = %d after restart, want >= 1", round, snapRestores))
			}
			killed = true
			fmt.Fprintf(os.Stderr, "ccload: round %d: recovery verified (makespan bit-identical, cache_hits=%d, snapshot_restores=%d)\n",
				round, rr.Result.Report.CacheHits, snapRestores)
		}
	}
	wall := time.Since(start)
	after, err := fetchMetrics(c.url, c.retries)
	if err != nil {
		fail(err)
	}
	if killed {
		// Fold the pre-kill window into the post-boot counters.
		after.AdmittedTotal += preKill.AdmittedTotal - before.AdmittedTotal
		after.SolvesTotal += preKill.SolvesTotal - before.SolvesTotal
		after.CoalescedHitsTotal += preKill.CoalescedHitsTotal - before.CoalescedHitsTotal
		after.ResultCacheHitsTotal += preKill.ResultCacheHitsTotal - before.ResultCacheHitsTotal
		after.RejectedQueueFullTotal += preKill.RejectedQueueFullTotal - before.RejectedQueueFullTotal
		after.SolveErrorsTotal += preKill.SolveErrorsTotal - before.SolveErrorsTotal
		after.SessionResolvesTotal += preKill.SessionResolvesTotal - before.SessionResolvesTotal
		after.SessionSolveLatency.SumMs += preKill.SessionSolveLatency.SumMs - before.SessionSolveLatency.SumMs
		after.FeasibilityCache.Hits += preKill.FeasibilityCache.Hits - before.FeasibilityCache.Hits
		after.FeasibilityCache.Misses += preKill.FeasibilityCache.Misses - before.FeasibilityCache.Misses
		before = postBoot
	}
	// Histogram deltas can't be folded across the restart, so after a kill
	// this covers the post-boot window only.
	printQueueWait(before, after)
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) float64 {
		return float64(latencies[int(p*float64(len(latencies)-1))]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	roundLatency := latencySummary{
		P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
		Max:  float64(latencies[len(latencies)-1]) / float64(time.Millisecond),
		Mean: float64(sum) / float64(len(latencies)) / float64(time.Millisecond),
	}
	rep := report{
		Label:      c.label,
		Config:     c.cfg,
		WallS:      wall.Seconds(),
		Throughput: float64(c.rounds) / wall.Seconds(),
		Totals:     tot,
		LatencyMs:  roundLatency,
		Server: serverDeltas{
			Admitted:              after.AdmittedTotal - before.AdmittedTotal,
			Solves:                after.SolvesTotal - before.SolvesTotal,
			CoalescedHits:         after.CoalescedHitsTotal - before.CoalescedHitsTotal,
			ResultCacheHits:       after.ResultCacheHitsTotal - before.ResultCacheHitsTotal,
			RejectedQueueFull:     after.RejectedQueueFullTotal - before.RejectedQueueFullTotal,
			SolveErrors:           after.SolveErrorsTotal - before.SolveErrorsTotal,
			FeasibilityCacheHits:  after.FeasibilityCache.Hits - before.FeasibilityCache.Hits,
			FeasibilityCacheMiss:  after.FeasibilityCache.Misses - before.FeasibilityCache.Misses,
			ResultCacheEntriesNow: after.ResultCacheEntries,
		},
		Session: &sessionReport{
			Rounds:          c.rounds,
			ChurnFraction:   c.churn,
			ResizePct:       c.resizePct,
			RoundLatencyMs:  roundLatency,
			SolveMsMean:     solveMsSum / float64(c.rounds),
			SessionResolves: after.SessionResolvesTotal - before.SessionResolvesTotal,
			SessionSolveMs:  after.SessionSolveLatency.SumMs - before.SessionSolveLatency.SumMs,
			CacheHits:       after.ResultCacheHitsTotal - before.ResultCacheHitsTotal,
			Verified:        c.verify && verified,
			Kill9:           killed,
			KillRound: func() int {
				if killed {
					return c.kill9Round
				}
				return 0
			}(),
			RestoredWarm:     restoredWarm,
			SnapshotRestores: snapRestores,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if c.out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(c.out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("ccload: session churn %d rounds in %.2fs (mean %.1fms/round, %d session re-solves, verified=%v) → %s\n",
		c.rounds, wall.Seconds(), rep.LatencyMs.Mean, rep.Session.SessionResolves, rep.Session.Verified, c.out)
}

// watchConfig parameterizes one -watch anytime run.
type watchConfig struct {
	url               string
	family            string
	n, classes, slots int
	m                 int64
	pmax, seed        int64
	opts              ccsched.Options
	verify            bool
	timeoutMs         int64
	wait              time.Duration
	out, label        string
	retries           int
	cfg               runConfig
}

// runWatch drives the anytime tier: one TierAnytime session, its /watch SSE
// stream consumed to the terminal rung, the stream contract asserted (>= 2
// events, strictly increasing generations, monotone non-increasing gaps) and
// the serving latencies recorded.
func runWatch(c watchConfig) {
	in, err := ccsched.Generate(c.family, ccsched.GeneratorConfig{
		N: c.n, Classes: c.classes, Machines: c.m, Slots: c.slots, PMax: c.pmax, Seed: c.seed,
	})
	if err != nil {
		fail(err)
	}
	c.opts.Tier = ccsched.TierAnytime
	client := &http.Client{Timeout: c.wait}
	before, err := fetchMetrics(c.url, c.retries)
	if err != nil {
		fail(fmt.Errorf("reading initial metrics (is ccserved running?): %w", err))
	}
	start := time.Now()
	sr, err := sessionRequest(client, c.retries, "POST", c.url+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: c.opts, TimeoutMs: c.timeoutMs,
	})
	if err != nil {
		fail(err)
	}
	firstAnswer := time.Since(start)
	if sr.Result == nil || sr.Result.Anytime == nil || sr.Result.Anytime.Rung != 0 {
		fail(fmt.Errorf("create answered without a rung-0 anytime result: %+v", sr.Result))
	}

	// Stream to the terminal rung. The SSE connection outlives any sane
	// per-request timeout, so it gets its own unbounded client with the wait
	// budget enforced by a context deadline instead.
	ctx, cancel := context.WithTimeout(context.Background(), c.wait)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", c.url+"/v1/sessions/"+sr.SessionID+"/watch", nil)
	if err != nil {
		fail(err)
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		fail(fmt.Errorf("opening watch stream: %w", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("watch stream: status %d", resp.StatusCode))
	}
	var (
		events   []server.WatchEvent
		final    *server.WatchEvent
		timeTo10 time.Duration
		finalAt  time.Duration
		monotone = true
		lastGen  uint64
		sc       = bufio.NewScanner(resp.Body)
	)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.WatchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			fail(fmt.Errorf("decoding watch event: %w", err))
		}
		if ev.Generation <= lastGen {
			fail(fmt.Errorf("watch generation %d did not increase past %d", ev.Generation, lastGen))
		}
		lastGen = ev.Generation
		if len(events) > 0 && ev.Gap > events[len(events)-1].Gap+1e-9 {
			monotone = false
		}
		if timeTo10 == 0 && ev.Gap <= 0.10 {
			timeTo10 = time.Since(start)
		}
		events = append(events, ev)
		if ev.Final {
			final = &events[len(events)-1]
			finalAt = time.Since(start)
			break
		}
	}
	if final == nil {
		fail(fmt.Errorf("watch stream ended without a final event after %d events: %v", len(events), sc.Err()))
	}
	if len(events) < 2 {
		fail(fmt.Errorf("watch stream carried %d events, want >= 2 (first answer + terminal rung)", len(events)))
	}
	if !monotone {
		fail(fmt.Errorf("watch gaps are not monotone non-increasing: %+v", gaps(events)))
	}

	verified := false
	if c.verify {
		coldOpts := c.opts
		coldOpts.Tier = ccsched.TierPTAS
		coldOpts.Cache = ccsched.NewFeasibilityCache()
		want, err := ccsched.Solve(context.Background(), in, coldOpts)
		if err != nil {
			fail(fmt.Errorf("cold verify solve: %w", err))
		}
		if final.Makespan != want.Makespan.RatString() {
			fail(fmt.Errorf("final anytime makespan %s != cold TierPTAS(ε=%g) %s — parity broken",
				final.Makespan, coldOpts.Epsilon, want.Makespan.RatString()))
		}
		verified = true
	}
	after, err := fetchMetrics(c.url, c.retries)
	if err != nil {
		fail(err)
	}
	printQueueWait(before, after)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep := report{
		Label:  c.label,
		Config: c.cfg,
		WallS:  finalAt.Seconds(),
		Totals: totals{OK: int64(len(events)) + 1, ByStatus: map[int]int64{http.StatusOK: int64(len(events)) + 1}},
		LatencyMs: latencySummary{
			P50: ms(firstAnswer), P90: ms(finalAt), P99: ms(finalAt),
			Max: ms(finalAt), Mean: ms(finalAt) / float64(len(events)),
		},
		Server: serverDeltas{
			Admitted:             after.AdmittedTotal - before.AdmittedTotal,
			Solves:               after.SolvesTotal - before.SolvesTotal,
			FeasibilityCacheHits: after.FeasibilityCache.Hits - before.FeasibilityCache.Hits,
			FeasibilityCacheMiss: after.FeasibilityCache.Misses - before.FeasibilityCache.Misses,
		},
		Watch: &watchReport{
			Events:          len(events),
			FirstAnswerMs:   ms(firstAnswer),
			FirstGap:        events[0].Gap,
			FinalGap:        final.Gap,
			TimeToGap10Ms:   ms(timeTo10),
			FinalMs:         ms(finalAt),
			MonotoneGap:     monotone,
			RefinementRungs: after.RefinementRungsTotal - before.RefinementRungsTotal,
			Verified:        verified,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if c.out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(c.out, data, 0o644); err != nil {
		fail(err)
	}
	gap10 := "never"
	if timeTo10 > 0 {
		gap10 = fmt.Sprintf("at %.1fms", rep.Watch.TimeToGap10Ms)
	}
	fmt.Printf("ccload: anytime watch: first answer %.1fms (gap %.3f), %d events to final %.1fms (gap %.3f), gap<=10%% %s, verified=%v → %s\n",
		rep.Watch.FirstAnswerMs, rep.Watch.FirstGap, rep.Watch.Events, rep.Watch.FinalMs, rep.Watch.FinalGap,
		gap10, rep.Watch.Verified, c.out)
}

// gaps projects the events' gap sequence for error messages.
func gaps(evs []server.WatchEvent) []float64 {
	out := make([]float64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Gap
	}
	return out
}

// histPercentile estimates the p-quantile (in milliseconds) of the run's
// share of a cumulative latency histogram: per-bucket deltas between the
// after and before scrapes, with the quantile read off the first bucket
// whose cumulative delta covers it (the bucket's upper bound, i.e. a
// conservative estimate; the +Inf bucket reports the largest finite bound).
func histPercentile(before, after server.LatencySnapshot, p float64) float64 {
	total := after.Count - before.Count
	if total <= 0 || len(after.Buckets) == 0 {
		return 0
	}
	rank := int64(p * float64(total-1))
	lastLe := 0.0
	for i, b := range after.Buckets {
		var prev int64
		if i < len(before.Buckets) {
			prev = before.Buckets[i].Count
		}
		if b.Count-prev > rank {
			if b.LeMs == 0 { // +Inf bucket
				return lastLe
			}
			return b.LeMs
		}
		if b.LeMs != 0 {
			lastLe = b.LeMs
		}
	}
	return lastLe
}

// printQueueWait reports the run's queue-wait percentiles from the server's
// queue_wait_latency histogram — the early saturation signal: it grows
// before solve latency does when the worker pool is undersized.
func printQueueWait(before, after server.MetricsSnapshot) {
	b, a := before.QueueWaitLatency, after.QueueWaitLatency
	if a.Count-b.Count <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "ccload: queue wait p50<=%.0fms p99<=%.0fms (%d waits observed)\n",
		histPercentile(b, a, 0.50), histPercentile(b, a, 0.99), a.Count-b.Count)
}

// fetchMetrics reads the server's /metrics snapshot, retrying transient
// failures up to retries times.
func fetchMetrics(url string, retries int) (server.MetricsSnapshot, error) {
	var m server.MetricsSnapshot
	resp, err := doWithRetry(http.DefaultClient, retries, func() (*http.Request, error) {
		return http.NewRequest("GET", url+"/metrics", nil)
	})
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// startServerCmd launches the managed ccserved process (-server-cmd split
// on whitespace) with its output forwarded to stderr.
func startServerCmd(command string) (*exec.Cmd, error) {
	args := strings.Fields(command)
	if len(args) == 0 {
		return nil, fmt.Errorf("-server-cmd is empty")
	}
	cmd := exec.Command(args[0], args[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %q: %w", command, err)
	}
	return cmd, nil
}

// waitHealthy polls /healthz until the server answers 200 or the budget
// expires.
func waitHealthy(url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s", url, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// exportSession fetches a session's snapshot document.
func exportSession(client *http.Client, url, sid string, retries int) ([]byte, error) {
	resp, err := doWithRetry(client, retries, func() (*http.Request, error) {
		return http.NewRequest("GET", url+"/v1/sessions/"+sid+"/export", nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET export: status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// importSession PUTs a snapshot document back under sid.
func importSession(client *http.Client, url, sid string, snap []byte, retries int) error {
	resp, err := doWithRetry(client, retries, func() (*http.Request, error) {
		return http.NewRequest("PUT", url+"/v1/sessions/"+sid+"/export", bytes.NewReader(snap))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("PUT export: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// shuffled returns a job-order permutation of in; the canonical form (and
// thus the server's dedup key) is unchanged.
func shuffled(in *ccsched.Instance, rng *rand.Rand) *ccsched.Instance {
	out := &ccsched.Instance{M: in.M, Slots: in.Slots}
	for _, j := range rng.Perm(in.N()) {
		out.P = append(out.P, in.P[j])
		out.Class = append(out.Class, in.Class[j])
	}
	return out
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "ccserved base URL")
		clients   = flag.Int("clients", 64, "concurrent clients")
		requests  = flag.Int("requests", 256, "total requests")
		dup       = flag.Float64("dup", 0.5, "fraction of requests that duplicate an earlier instance")
		family    = flag.String("family", "uniform", "workload family")
		n         = flag.Int("n", 200, "jobs per instance")
		classes   = flag.Int("classes", 20, "classes per instance")
		m         = flag.Int64("m", 8, "machines")
		slots     = flag.Int("slots", 3, "class slots per machine")
		pmax      = flag.Int64("pmax", 100, "maximum processing time")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		variant   = flag.String("variant", "splittable", "splittable | preemptive | nonpreemptive")
		tier      = flag.String("tier", "approx", "auto | approx | ptas | exact")
		eps       = flag.Float64("eps", 0.5, "PTAS accuracy ε")
		timeoutMs = flag.Int64("timeout-ms", 0, "per-request solve deadline (0 = server default)")
		wait      = flag.Duration("wait", 5*time.Minute, "client-side wait per request")
		out       = flag.String("out", "", "write the JSON report here (default stdout)")
		label     = flag.String("label", "", "free-form label recorded in the report")
		watch     = flag.Bool("watch", false, "anytime mode: create one TierAnytime session, stream /watch to the terminal rung, assert >= 2 events with monotone non-increasing gaps, record time-to-first-answer and time-to-gap<=10%")
		churn     = flag.Float64("churn", 0, "session mode: fraction of jobs mutated per round (0 = classic load mode)")
		rounds    = flag.Int("rounds", 20, "session mode: delta rounds")
		resizePct = flag.Float64("churn-resize-pct", 2, "session mode: max resize magnitude as a percentage of the current size")
		verify    = flag.Bool("verify", false, "session mode: cold-solve each round in-process and require bit-identical makespans")
		retries   = flag.Int("retries", 0, "session mode: retries per request on 429/503/connection errors, with exponential backoff + jitter (0 = fail fast)")
		kill9     = flag.Bool("kill9", false, "session mode: SIGKILL and restart the managed server at -kill9-round and require warm, bit-identical recovery (needs -server-cmd)")
		serverCmd = flag.String("server-cmd", "", "session mode: launch this ccserved command and manage its lifecycle (required by -kill9)")
		kill9Rnd  = flag.Int("kill9-round", 0, "session mode: churn round after which the server is killed (0 = rounds/2)")
		kill9Wait = flag.Duration("kill9-wait", time.Second, "session mode: pause before the kill so a background checkpoint can land")
	)
	flag.Parse()
	v, err := ccsched.ParseVariant(*variant)
	if err != nil {
		fail(err)
	}
	tr, err := ccsched.ParseTier(*tier)
	if err != nil {
		fail(err)
	}
	opts := ccsched.Options{Variant: v, Tier: tr}
	if tr == ccsched.TierPTAS || tr == ccsched.TierAuto || tr == ccsched.TierAnytime || *watch {
		opts.Epsilon = *eps
	}

	if *watch {
		runWatch(watchConfig{
			url: *url, family: *family, n: *n, classes: *classes, m: *m,
			slots: *slots, pmax: *pmax, seed: *seed, opts: opts,
			verify: *verify, timeoutMs: *timeoutMs, wait: *wait,
			out: *out, label: *label, retries: *retries,
			cfg: runConfig{
				URL: *url, Clients: 1, Requests: 1, Family: *family,
				N: *n, Classes: *classes, Machines: *m, Slots: *slots,
				PMax: *pmax, Seed: *seed, Variant: v.String(), Tier: ccsched.TierAnytime.String(),
				Epsilon: opts.Epsilon, TimeoutMs: *timeoutMs,
			},
		})
		return
	}

	if *churn > 0 {
		runChurn(churnConfig{
			url: *url, family: *family, n: *n, classes: *classes, m: *m,
			slots: *slots, pmax: *pmax, seed: *seed, opts: opts,
			churn: *churn, rounds: *rounds, resizePct: *resizePct,
			verify: *verify, timeoutMs: *timeoutMs, wait: *wait,
			out: *out, label: *label, retries: *retries,
			kill9: *kill9, serverCmd: *serverCmd,
			kill9Round: *kill9Rnd, kill9Wait: *kill9Wait,
			cfg: runConfig{
				URL: *url, Clients: 1, Requests: *rounds, Family: *family,
				N: *n, Classes: *classes, Machines: *m, Slots: *slots,
				PMax: *pmax, Seed: *seed, Variant: v.String(), Tier: tr.String(),
				Epsilon: opts.Epsilon, TimeoutMs: *timeoutMs,
			},
		})
		return
	}

	// Build the request deck: originals, with half the duplicates placed
	// right after their original (coalescing pressure: both are in flight
	// together) and half at the tail (result-cache pressure: the original
	// finished long ago).
	nDup := int(float64(*requests) * *dup)
	nUnique := *requests - nDup
	if nUnique < 1 {
		fail(fmt.Errorf("dup fraction %v leaves no unique instances", *dup))
	}
	rng := rand.New(rand.NewSource(*seed * 7919))
	uniques := make([]*ccsched.Instance, nUnique)
	for i := range uniques {
		uniques[i], err = ccsched.Generate(*family, ccsched.GeneratorConfig{
			N: *n, Classes: *classes, Machines: *m, Slots: *slots, PMax: *pmax, Seed: *seed + int64(i),
		})
		if err != nil {
			fail(err)
		}
	}
	var deck []*ccsched.Instance
	adjacent := nDup / 2
	for i, u := range uniques {
		deck = append(deck, u)
		if i < adjacent {
			deck = append(deck, shuffled(u, rng))
		}
	}
	for i := 0; i < nDup-adjacent; i++ {
		deck = append(deck, shuffled(uniques[i%nUnique], rng))
	}

	// Fire the deck with -clients concurrent workers pulling off a shared
	// cursor, so adjacent deck entries run concurrently.
	var (
		cursor    atomic.Int64
		tot       totals
		statusMu  sync.Mutex
		latencies = make([]time.Duration, len(deck))
		succeeded = make([]bool, len(deck))
	)
	tot.ByStatus = make(map[int]int64)
	before, err := fetchMetrics(*url, 0)
	if err != nil {
		fail(fmt.Errorf("reading initial metrics (is ccserved running?): %w", err))
	}
	client := &http.Client{Timeout: *wait}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(deck) {
					return
				}
				body, err := json.Marshal(server.SolveRequest{Instance: deck[i], Options: opts, TimeoutMs: *timeoutMs})
				if err != nil {
					fail(err)
				}
				reqStart := time.Now()
				resp, err := client.Post(*url+"/v1/solve?wait="+wait.String(), "application/json", bytes.NewReader(body))
				latencies[i] = time.Since(reqStart)
				if err != nil {
					atomic.AddInt64(&tot.Errors, 1)
					continue
				}
				var sr server.SolveResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				statusMu.Lock()
				tot.ByStatus[resp.StatusCode]++
				statusMu.Unlock()
				switch {
				case decErr != nil || resp.StatusCode != http.StatusOK || sr.Result == nil:
					if resp.StatusCode == http.StatusTooManyRequests {
						atomic.AddInt64(&tot.Dropped, 1)
					} else {
						atomic.AddInt64(&tot.Errors, 1)
					}
				default:
					atomic.AddInt64(&tot.OK, 1)
					succeeded[i] = true
					if sr.Coalesced {
						atomic.AddInt64(&tot.Coalesced, 1)
					}
					if sr.Cached {
						atomic.AddInt64(&tot.Cached, 1)
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	after, err := fetchMetrics(*url, 0)
	if err != nil {
		fail(err)
	}
	printQueueWait(before, after)

	// Percentiles cover successful requests only — a 429 returning in a
	// millisecond would otherwise drag the reported latencies down.
	var sorted []time.Duration
	for i, d := range latencies {
		if succeeded[i] {
			sorted = append(sorted, d)
		}
	}
	if len(sorted) == 0 {
		fail(fmt.Errorf("no request succeeded (server deltas: coalesced=%d cached=%d rejected=%d)",
			after.CoalescedHitsTotal-before.CoalescedHitsTotal,
			after.ResultCacheHitsTotal-before.ResultCacheHitsTotal,
			after.RejectedQueueFullTotal-before.RejectedQueueFullTotal))
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}

	rep := report{
		Label: *label,
		Config: runConfig{
			URL: *url, Clients: *clients, Requests: len(deck), DupFrac: *dup,
			Family: *family, N: *n, Classes: *classes, Machines: *m, Slots: *slots,
			PMax: *pmax, Seed: *seed, Variant: v.String(), Tier: tr.String(),
			Epsilon: opts.Epsilon, TimeoutMs: *timeoutMs,
		},
		WallS:      wall.Seconds(),
		Throughput: float64(len(deck)) / wall.Seconds(),
		Totals:     tot,
		LatencyMs: latencySummary{
			P50: pct(0.50), P90: pct(0.90), P99: pct(0.99),
			Max:  float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
			Mean: float64(sum) / float64(len(sorted)) / float64(time.Millisecond),
		},
		Server: serverDeltas{
			Admitted:              after.AdmittedTotal - before.AdmittedTotal,
			Solves:                after.SolvesTotal - before.SolvesTotal,
			CoalescedHits:         after.CoalescedHitsTotal - before.CoalescedHitsTotal,
			ResultCacheHits:       after.ResultCacheHitsTotal - before.ResultCacheHitsTotal,
			RejectedQueueFull:     after.RejectedQueueFullTotal - before.RejectedQueueFullTotal,
			SolveErrors:           after.SolveErrorsTotal - before.SolveErrorsTotal,
			FeasibilityCacheHits:  after.FeasibilityCache.Hits - before.FeasibilityCache.Hits,
			FeasibilityCacheMiss:  after.FeasibilityCache.Misses - before.FeasibilityCache.Misses,
			ResultCacheEntriesNow: after.ResultCacheEntries,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("ccload: %d requests in %.2fs (%.1f rps): %d ok, %d coalesced, %d cached, %d dropped, %d errors → %s\n",
		len(deck), wall.Seconds(), rep.Throughput, tot.OK, tot.Coalesced, tot.Cached, tot.Dropped, tot.Errors, *out)
}
