// Command ccgen generates CCS instances from the built-in workload
// families and writes them in the textual instance format, or — with
// -json — in the JSON wire format that cmd/ccserved and ccsolve's stdin
// accept.
//
// Usage:
//
//	ccgen -family zipf -n 200 -classes 20 -m 8 -slots 3 -pmax 1000 -seed 7 -o inst.ccs
//	ccgen -family uniform -n 200 -json | curl -d @- localhost:8080/v1/solve   # (wrap in {"instance": ...})
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ccsched"
)

func main() {
	var (
		family  = flag.String("family", "uniform", "workload family: "+strings.Join(ccsched.GeneratorFamilies(), ", "))
		n       = flag.Int("n", 50, "number of jobs")
		classes = flag.Int("classes", 10, "number of classes C")
		m       = flag.Int64("m", 4, "number of machines")
		slots   = flag.Int("slots", 2, "class slots per machine c")
		pmax    = flag.Int64("pmax", 100, "maximum processing time")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("o", "", "output file (default stdout)")
		asJSON  = flag.Bool("json", false, "write the JSON wire format instead of the textual one")
	)
	flag.Parse()
	in, err := ccsched.Generate(*family, ccsched.GeneratorConfig{
		N: *n, Classes: *classes, Machines: *m, Slots: *slots, PMax: *pmax, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccgen:", err)
		os.Exit(1)
	}
	var text string
	if *asJSON {
		data, err := json.Marshal(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccgen:", err)
			os.Exit(1)
		}
		text = string(data) + "\n"
	} else {
		text = ccsched.FormatInstance(in)
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ccgen:", err)
		os.Exit(1)
	}
}
