// Command ccserved is the CCS scheduling service: a long-lived daemon that
// accepts instances over HTTP/JSON, coalesces identical concurrent requests
// into one solve, caches full results above the shared per-guess
// feasibility cache, and answers from a bounded worker pool with
// per-request deadlines. See internal/server for the pipeline and
// docs/ARCHITECTURE.md ("Service layer") for the design.
//
// Usage:
//
//	ccserved -addr :8080 -workers 4 -queue 256 -result-cache 1024
//
// Endpoints:
//
//	POST   /v1/solve          submit {"instance":..., "options":..., "timeout_ms":...};
//	                          ?wait=30s blocks for the result (default), ?wait=0
//	                          returns 202 with a job id immediately
//	GET    /v1/jobs/{id}      poll a submission (?wait= blocks)
//	POST   /v1/sessions       create a scheduling session (live instance +
//	                          warm solver state held server-side)
//	PATCH  /v1/sessions/{id}  apply job/machine deltas, incremental re-solve
//	GET    /v1/sessions/{id}  current schedule
//	DELETE /v1/sessions/{id}  drop the session
//	GET    /v1/sessions/{id}/export   versioned session snapshot (live migration)
//	PUT    /v1/sessions/{id}/export   import a snapshot under the given id
//	GET    /v1/sessions/{id}/watch    SSE stream of an anytime session's
//	                          refinement improvements (options.tier "anytime":
//	                          instant 2-approx answer, background ε-ladder
//	                          refinement on the -refine-workers pool;
//	                          Last-Event-ID resumes after a disconnect or
//	                          restart without duplicate generations)
//	GET    /healthz           liveness + queue gauges (200 for as long as the
//	                          process serves, draining included)
//	GET    /readyz            readiness: 503 while draining, while the queue
//	                          is over 90% full, or while checkpointing is
//	                          degraded to in-memory-only
//	GET    /metrics           counters, caches, labeled latency histograms;
//	                          JSON by default, Prometheus text exposition with
//	                          ?format=prom (or Accept: text/plain)
//	GET    /v1/debug/traces   the -trace-ring slowest solves' span timelines
//	       /v1/debug/faults   fault-injection admin (-fault-admin only)
//
// Every request gets an X-Request-Id (client-supplied ids are honored) and
// one structured log line — method, path, status, latency, outcome —
// through log/slog in the -log-format of choice; ?trace=1 on /v1/solve or
// /v1/sessions returns the solve's per-stage span timeline in result.trace.
//
// With -state-dir, sessions are durable: dirty sessions are checkpointed
// there every -checkpoint interval (atomic, checksummed files), a final
// snapshot pass runs on drain, and the next boot restores every readable
// snapshot — unreadable or version-mismatched files are skipped with a
// logged reason, never trusted. A kill -9 costs at most the work since the
// last checkpoint; restored warm state is re-verified before it can touch a
// verdict, so restarted sessions answer bit-identically to a cold solve.
//
// Resilience: solver panics are recovered into HTTP 500s (the process never
// dies for one request), keys that panic repeatedly are quarantined with 422
// for a TTL, and -soft-timeout (or soft_timeout_ms per request) answers slow
// solves with the millisecond 2-approx (certified lower bound,
// result.degraded=true) while the full solve continues. Chaos testing arms
// faults via -faults, the CCSCHED_FAULTS environment variable, or — with
// -fault-admin — at PUT /v1/debug/faults.
//
// SIGINT/SIGTERM starts a graceful shutdown: admission stops (503), the
// queue drains, and solves still running when -grace expires are canceled
// via context. The drain's final snapshot pass fsyncs and closes its files
// regardless of -grace; a failed snapshot write is logged and counted but
// never changes the exit status. A second signal forces immediate
// cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccsched"
	"ccsched/internal/faultinject"
	"ccsched/internal/server"
)

// pprofMux builds a mux with the standard net/http/pprof endpoints. The
// handlers are registered explicitly instead of importing the package for
// its DefaultServeMux side effect, so the service handler can never leak
// them.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "solver pool size (0 = 4)")
		queue         = flag.Int("queue", 256, "bounded admission queue depth (excess gets 429)")
		resultCache   = flag.Int("result-cache", 1024, "full-result LRU entries")
		defTimeout    = flag.Duration("default-timeout", 120*time.Second, "solve deadline for requests without timeout_ms")
		maxTimeout    = flag.Duration("max-timeout", 15*time.Minute, "cap on the wire-settable timeout_ms")
		maxJobs       = flag.Int("max-jobs", 100000, "largest admitted instance (jobs)")
		maxSessions   = flag.Int("max-sessions", 1024, "cap on live scheduling sessions (excess creations get 429)")
		maxBody       = flag.Int64("max-body", 32<<20, "maximum request body bytes")
		stateDir      = flag.String("state-dir", "", "directory for durable session snapshots (restore on boot, checkpoint while running, snapshot on drain); empty disables persistence")
		checkpoint    = flag.Duration("checkpoint", 0, "background checkpoint interval for dirty sessions when -state-dir is set (0 = 30s)")
		grace         = flag.Duration("grace", 30*time.Second, "shutdown drain budget before in-flight solves are canceled")
		quiet         = flag.Bool("quiet", false, "suppress per-solve and per-request logging (warnings still log)")
		logFormat     = flag.String("log-format", "text", "structured log format: text | json")
		traceRing     = flag.Int("trace-ring", 0, "slowest-traces debug ring capacity at /v1/debug/traces (0 = 16, negative disables tracing unless requested)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); off by default")
		enginePar     = flag.Int("engine-parallelism", 0, "intra-engine worker count for requests that do not set engine_parallelism (clamped to GOMAXPROCS; 0 keeps engines serial; results are bit-identical at any value)")
		softTimeout   = flag.Duration("soft-timeout", 0, "degraded-fallback deadline: synchronous solves still running this long are answered with the 2-approx while the full solve continues (0 disables; soft_timeout_ms overrides per request)")
		refineWorkers = flag.Int("refine-workers", 0, "low-priority worker pool refining anytime sessions through the ε-ladder (0 = 2; negative disables background refinement)")
		refineBudget  = flag.Float64("refine-budget", 0, "per-tenant refinement budget in ladder rungs per second (X-Tenant-Id header selects the bucket; 0 = unlimited); an exhausted tenant's ladders park, metered, until tokens refill")
		faultAdmin    = flag.Bool("fault-admin", false, "expose the fault-injection registry at /v1/debug/faults (chaos testing only; never on an exposed port)")
		faults        = flag.String("faults", "", "arm fault-injection specs at boot, comma-separated point=mode[:arg][*hits] clauses (also read from CCSCHED_FAULTS)")
	)
	flag.Parse()
	for _, specs := range []string{os.Getenv("CCSCHED_FAULTS"), *faults} {
		if specs == "" {
			continue
		}
		if err := faultinject.ArmSpecs(specs); err != nil {
			log.Fatalf("ccserved: %v", err)
		}
		log.Printf("ccserved: fault injection armed: %s", specs)
	}
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// A dedicated listener keeps the profiling surface off the public
		// service port: the pprof mux is registered only here, never on the
		// API handler, so -pprof on an internal interface exposes nothing
		// externally. It gets the same slow-client protections as the API
		// server (long response writes stay unbounded — CPU profiles stream
		// for their full duration).
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("ccserved: pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ccserved: pprof listener: %v", err)
			}
		}()
	}
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	default:
		log.Fatalf("ccserved: unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)
	svc := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		ResultCacheEntries: *resultCache,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		MaxJobs:            *maxJobs,
		MaxSessions:        *maxSessions,
		MaxBodyBytes:       *maxBody,
		StateDir:           *stateDir,
		CheckpointInterval: *checkpoint,
		EngineParallelism:  *enginePar,
		SoftTimeout:        *softTimeout,
		RefineWorkers:      *refineWorkers,
		RefineBudgetPerSec: *refineBudget,
		FaultAdmin:         *faultAdmin,
		TraceRing:          *traceRing,
		Cache:              ccsched.NewFeasibilityCache(),
		Logger:             logger,
	})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Slow-client protection: a connection dribbling its headers (or
		// idling between requests) must not hold a goroutine and fd
		// forever. Response writes stay unbounded — long ?wait= holds are
		// legitimate.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sigs
		log.Printf("ccserved: shutting down (drain budget %s; signal again to force)", *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		go func() {
			<-sigs
			log.Printf("ccserved: forcing shutdown")
			cancel()
		}()
		if err := svc.Shutdown(ctx); err != nil {
			log.Printf("ccserved: drain incomplete, in-flight solves canceled: %v", err)
		} else {
			log.Printf("ccserved: drained cleanly")
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("ccserved: http shutdown: %v", err)
		}
		if pprofSrv != nil {
			if err := pprofSrv.Shutdown(sctx); err != nil {
				log.Printf("ccserved: pprof shutdown: %v", err)
			}
		}
	}()

	w := *workers
	if w <= 0 {
		w = 4 // server.Config's default
	}
	log.Printf("ccserved: listening on %s (workers=%d queue=%d result-cache=%d)",
		*addr, w, *queue, *resultCache)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ccserved: %v", err)
	}
	<-done
}
