// Command ccbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: E1–E8 measure the paper's theorems, E9 measures the
// PR 2 parallel guess search and feasibility cache, E11 measures the PR 7
// intra-probe parallelism, F1–F5 execute the paper's figures.
//
// Usage:
//
//	ccbench                      # run everything, markdown to stdout
//	ccbench -exp E1,E4,F5        # run a subset
//	ccbench -exp E9 -parallelism 8 -timeout 10m
//	ccbench -json results.json   # additionally write machine-readable JSON
//	ccbench -exp E8 -cpuprofile cpu.out -memprofile mem.out
//
// -cpuprofile/-memprofile write runtime/pprof profiles of the selected
// experiments (flushed on normal exit; an experiment failure exits without
// flushing), so solver hot spots can be inspected with `go tool pprof`
// without building a separate harness.
//
// -parallelism sets the worker count E9 compares against the sequential
// search; -timeout aborts the whole run via context cancellation (enforced
// between experiments, and inside the context-aware ones down to the ILP
// iteration). The -json file holds the same tables as structured data
// ({id, title, claim, columns, rows, notes} per experiment), so benchmark
// runs can be archived and diffed (see BENCH_PR1.json and BENCH_PR2.json
// at the repository root).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ccsched/internal/experiments"
)

// jsonTable is the machine-readable form of an experiments.Table.
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func main() {
	var (
		exps        = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		jsonPath    = flag.String("json", "", "write results as JSON to this file")
		parallelism = flag.Int("parallelism", 8, "guess-search workers for E9's parallel rows")
		timeout     = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: memprofile: %v\n", err)
			}
		}()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	all := map[string]func() (*experiments.Table, error){
		"E1":  experiments.E1Splittable,
		"E2":  experiments.E2Preemptive,
		"E3":  experiments.E3NonPreemptive,
		"E4":  experiments.E4Scaling,
		"E5":  experiments.E5SplittablePTAS,
		"E6":  experiments.E6NonPreemptivePTAS,
		"E7":  experiments.E7PreemptivePTAS,
		"E8":  experiments.E8NFold,
		"E9":  func() (*experiments.Table, error) { return experiments.E9ParallelGuess(ctx, *parallelism) },
		"E11": func() (*experiments.Table, error) { return experiments.E11IntraProbe(ctx) },
		"F1":  experiments.F1RoundRobin,
		"F2":  experiments.F2Repack,
		"F3":  experiments.F3PairSwap,
		"F4":  experiments.F4Dissolve,
		"F5":  experiments.F5FlowNetwork,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "F1", "F2", "F3", "F4", "F5"}
	var run []string
	if *exps == "" {
		run = order
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			run = append(run, id)
		}
	}
	var collected []jsonTable
	for _, id := range run {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v before %s\n", err, id)
			os.Exit(1)
		}
		tb, err := all[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tb.Format())
		if *jsonPath != "" {
			collected = append(collected, jsonTable{
				ID: tb.ID, Title: tb.Title, Claim: tb.Claim,
				Columns: tb.Columns, Rows: tb.Rows, Notes: tb.Notes,
			})
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
