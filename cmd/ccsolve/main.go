// Command ccsolve reads a CCS instance and solves it with a chosen
// algorithm, reporting the makespan, the certified lower bound and the
// resulting ratio, and validating the schedule before printing.
//
// Usage:
//
//	ccsolve -in inst.ccs -variant splittable -algo approx
//	ccsolve -in inst.ccs -variant nonpreemptive -algo ptas -eps 0.5
//	ccsolve -in inst.ccs -variant nonpreemptive -algo exact
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"time"

	"ccsched"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ccsolve:", err)
	os.Exit(1)
}

func main() {
	var (
		inFile  = flag.String("in", "", "instance file (textual format)")
		variant = flag.String("variant", "splittable", "splittable | preemptive | nonpreemptive")
		algo    = flag.String("algo", "approx", "approx | ptas | exact")
		eps     = flag.Float64("eps", 0.5, "PTAS accuracy ε")
	)
	flag.Parse()
	if *inFile == "" {
		fail(fmt.Errorf("missing -in"))
	}
	data, err := os.ReadFile(*inFile)
	if err != nil {
		fail(err)
	}
	in, err := ccsched.ParseInstance(string(data))
	if err != nil {
		fail(err)
	}
	var v ccsched.Variant
	switch *variant {
	case "splittable":
		v = ccsched.Splittable
	case "preemptive":
		v = ccsched.Preemptive
	case "nonpreemptive":
		v = ccsched.NonPreemptive
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	lb, err := ccsched.LowerBound(in, v)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	var makespan *big.Rat
	var detail string
	switch {
	case *algo == "approx" && v == ccsched.Splittable:
		res, err := ccsched.ApproxSplittable(in)
		if err != nil {
			fail(err)
		}
		if err := res.Compact.Validate(in); err != nil {
			fail(err)
		}
		makespan = res.Makespan()
		detail = fmt.Sprintf("guess=%s groups=%d", res.Guess.RatString(), len(res.Compact.Groups))
	case *algo == "approx" && v == ccsched.Preemptive:
		res, err := ccsched.ApproxPreemptive(in)
		if err != nil {
			fail(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			fail(err)
		}
		makespan = res.Makespan()
		detail = fmt.Sprintf("guess=%s repacked=%v pieces=%d", res.Guess.RatString(), res.Repacked, res.Schedule.PieceCount())
	case *algo == "approx" && v == ccsched.NonPreemptive:
		res, err := ccsched.ApproxNonPreemptive(in)
		if err != nil {
			fail(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			fail(err)
		}
		makespan = new(big.Rat).SetInt64(res.Makespan(in))
		detail = fmt.Sprintf("guess=%d groups=%d", res.Guess, res.Groups)
	case *algo == "ptas" && v == ccsched.Splittable:
		res, err := ccsched.PTASSplittable(in, ccsched.PTASOptions{Epsilon: *eps})
		if err != nil {
			fail(err)
		}
		if err := res.Compact.Validate(in); err != nil {
			fail(err)
		}
		makespan = res.Makespan()
		detail = fmt.Sprintf("guess=%d engine=%s nfold-vars=%d", res.Report.Guess, res.Report.Engine, res.Report.NFold.Vars)
	case *algo == "ptas" && v == ccsched.Preemptive:
		res, err := ccsched.PTASPreemptive(in, ccsched.PTASOptions{Epsilon: *eps})
		if err != nil {
			fail(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			fail(err)
		}
		makespan = res.Makespan()
		detail = fmt.Sprintf("guess=%d engine=%s nfold-vars=%d", res.Report.Guess, res.Report.Engine, res.Report.NFold.Vars)
	case *algo == "ptas" && v == ccsched.NonPreemptive:
		res, err := ccsched.PTASNonPreemptive(in, ccsched.PTASOptions{Epsilon: *eps})
		if err != nil {
			fail(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			fail(err)
		}
		makespan = new(big.Rat).SetInt64(res.Makespan(in))
		detail = fmt.Sprintf("guess=%d engine=%s nfold-vars=%d", res.Report.Guess, res.Report.Engine, res.Report.NFold.Vars)
	case *algo == "exact" && v == ccsched.NonPreemptive:
		sched, opt, err := ccsched.ExactNonPreemptive(in)
		if err != nil {
			fail(err)
		}
		if err := sched.Validate(in); err != nil {
			fail(err)
		}
		makespan = new(big.Rat).SetInt64(opt)
		detail = "optimal"
	case *algo == "exact" && v == ccsched.Splittable:
		opt, err := ccsched.ExactSplittable(in)
		if err != nil {
			fail(err)
		}
		makespan = opt
		detail = "optimal (makespan only)"
	default:
		fail(fmt.Errorf("unsupported combination %s/%s", *algo, *variant))
	}
	elapsed := time.Since(start)
	ratio := new(big.Rat).Quo(makespan, lb)
	rf, _ := ratio.Float64()
	fmt.Printf("instance : n=%d C=%d m=%d c=%d\n", in.N(), in.NumClasses(), in.M, in.Slots)
	fmt.Printf("algorithm: %s (%s)\n", *algo, *variant)
	fmt.Printf("makespan : %s\n", makespan.RatString())
	fmt.Printf("lower bnd: %s\n", lb.RatString())
	fmt.Printf("ratio    : %.4f (vs certified lower bound)\n", rf)
	fmt.Printf("detail   : %s\n", detail)
	fmt.Printf("time     : %s\n", elapsed.Round(time.Microsecond))
}
