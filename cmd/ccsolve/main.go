// Command ccsolve reads a CCS instance and solves it through the unified
// ccsched.Solve API, reporting the makespan, the certified lower bound and
// the resulting ratio, and validating the schedule before printing.
//
// Usage:
//
//	ccsolve -in inst.ccs -variant splittable -algo approx
//	ccsolve -in inst.ccs -variant nonpreemptive -algo ptas -eps 0.5
//	ccsolve -in inst.ccs -variant nonpreemptive -algo ptas -parallelism 8 -timeout 30s
//	ccsolve -in inst.ccs -variant nonpreemptive -algo exact
//	ccsolve -in inst.ccs -variant splittable -algo ptas -trace
//	ccgen -n 50 -json | ccsolve -variant preemptive -algo ptas
//
// With -in - (or no -in at all) the instance is read from stdin. Both the
// textual format and the JSON wire format are accepted; a leading '{'
// selects JSON.
//
// -parallelism controls the PTAS's speculative makespan-guess probes
// (default: all CPUs; results are bit-identical at any setting) and
// -timeout aborts the solve via context cancellation, which reaches the ILP
// engines at iteration boundaries.
//
// -trace records a per-stage span timeline through the pipeline
// (guess search, probes, N-fold engines, LP batches) and pretty-prints it
// after the report: the span tree with durations and counters, self time
// per stage, and the five slowest probes. Tracing never changes verdicts,
// guesses or makespans.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strings"
	"time"

	"ccsched"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ccsolve:", err)
	os.Exit(1)
}

// parseAnyInstance accepts both instance encodings: a leading '{' selects
// the JSON wire format, anything else the textual format.
func parseAnyInstance(data []byte) (*ccsched.Instance, error) {
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		in := &ccsched.Instance{}
		if err := json.Unmarshal([]byte(trimmed), in); err != nil {
			return nil, err
		}
		return in, nil
	}
	return ccsched.ParseInstance(string(data))
}

func main() {
	var (
		inFile      = flag.String("in", "-", "instance file, textual or JSON format (- = stdin)")
		variant     = flag.String("variant", "splittable", "splittable | preemptive | nonpreemptive")
		algo        = flag.String("algo", "approx", "auto | approx | ptas | exact")
		eps         = flag.Float64("eps", 0.5, "PTAS accuracy ε")
		parallelism = flag.Int("parallelism", 0, "concurrent PTAS guess probes (0 = all CPUs, 1 = sequential)")
		enginePar   = flag.Int("engine-parallelism", 0, "intra-engine workers per probe (brick scans, B&B subtrees; ≤1 = serial; results are bit-identical at any value)")
		timeout     = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
		traceFlag   = flag.Bool("trace", false, "record a per-stage span timeline and print it after the report")
	)
	flag.Parse()
	var (
		data []byte
		err  error
	)
	if *inFile == "" || *inFile == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*inFile)
	}
	if err != nil {
		fail(err)
	}
	in, err := parseAnyInstance(data)
	if err != nil {
		fail(err)
	}
	var v ccsched.Variant
	switch *variant {
	case "splittable":
		v = ccsched.Splittable
	case "preemptive":
		v = ccsched.Preemptive
	case "nonpreemptive":
		v = ccsched.NonPreemptive
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	var tier ccsched.Tier
	switch *algo {
	case "auto":
		tier = ccsched.TierAuto
	case "approx":
		tier = ccsched.TierApprox
	case "ptas":
		tier = ccsched.TierPTAS
	case "exact":
		tier = ccsched.TierExact
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := ccsched.Solve(ctx, in, ccsched.Options{
		Variant:           v,
		Tier:              tier,
		Epsilon:           *eps,
		Parallelism:       *parallelism,
		EngineParallelism: *enginePar,
		Trace:             *traceFlag,
	})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	// Validate whichever schedule the solve produced.
	var detail string
	switch {
	case res.CompactSplit != nil:
		if err := res.CompactSplit.Validate(in); err != nil {
			fail(err)
		}
		detail = fmt.Sprintf("groups=%d", len(res.CompactSplit.Groups))
	case res.Preemptive != nil:
		if err := res.Preemptive.Validate(in); err != nil {
			fail(err)
		}
		detail = fmt.Sprintf("pieces=%d", res.Preemptive.PieceCount())
	case res.NonPreemptive != nil:
		if err := res.NonPreemptive.Validate(in); err != nil {
			fail(err)
		}
		detail = "assignment"
	default:
		detail = "makespan only"
	}
	if res.Tier == ccsched.TierPTAS {
		detail += fmt.Sprintf(" guess=%d probes=%d engine=%s cache-hits=%d",
			res.Report.Guess, res.Report.Guesses, res.Report.Engine, res.Report.CacheHits)
	}
	rf := 0.0
	if res.LowerBound.Sign() > 0 {
		rf, _ = new(big.Rat).Quo(res.Makespan, res.LowerBound).Float64()
	}
	fmt.Printf("instance : n=%d C=%d m=%d c=%d\n", in.N(), in.NumClasses(), in.M, in.Slots)
	fmt.Printf("algorithm: %s (%s)\n", res.Tier, *variant)
	fmt.Printf("makespan : %s\n", res.Makespan.RatString())
	fmt.Printf("lower bnd: %s\n", res.LowerBound.RatString())
	fmt.Printf("ratio    : %.4f (vs certified lower bound)\n", rf)
	fmt.Printf("detail   : %s\n", detail)
	fmt.Printf("time     : %s\n", elapsed.Round(time.Microsecond))
	if res.Trace != nil {
		fmt.Println()
		res.Trace.Render(os.Stdout)
	}
}
